"""Seeded violations: the analyzer's self-conviction suite.

Each :class:`SeededCase` is a small synthetic module carrying exactly the
bug one rule exists to catch.  ``run_selftest`` analyzes each fixture
(together with the real package, so imports/types resolve) and demands
the expected rule convicts it at the expected line -- proof that a clean
HEAD means the rules *looked and found nothing*, not that they are
blind.  CI runs this next to the real scan; a rule change that silently
stops convicting its fixture fails the build.
"""

from __future__ import annotations

from dataclasses import dataclass
from textwrap import dedent

from repro.verify.report import Module
from repro.verify.static.wire import ProtocolSide, ProtocolSpec


@dataclass(frozen=True)
class SeededCase:
    """One synthetic module with one planted violation."""

    name: str
    rule: str
    relpath: str  # where the fixture pretends to live (drives prefixes)
    source: str
    #: substring that must appear in the conviction message
    expect: str
    #: protocol specs to register for this fixture (protocol rule only)
    extra_protocols: tuple[ProtocolSpec, ...] = ()

    def module(self) -> Module:
        return Module.from_source(dedent(self.source), self.relpath)


SEEDED: tuple[SeededCase, ...] = (
    SeededCase(
        name="deadlock-intraprocedural",
        rule="deadlock-cycle",
        relpath="runtime/_seed_dl1.py",
        source="""
            import threading

            class S:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self) -> None:
                    with self._a:
                        with self._b:
                            pass

                def backward(self) -> None:
                    with self._b:
                        with self._a:
                            pass
        """,
        expect="lock-order cycle between S._a and S._b",
    ),
    SeededCase(
        name="deadlock-interprocedural",
        rule="deadlock-cycle",
        relpath="runtime/_seed_dl2.py",
        source="""
            import threading

            class T:
                def __init__(self) -> None:
                    self._x = threading.Lock()
                    self._y = threading.Lock()

                def take_y(self) -> None:
                    with self._y:
                        pass

                def take_x(self) -> None:
                    with self._x:
                        pass

                def forward(self) -> None:
                    with self._x:
                        self.take_y()

                def backward(self) -> None:
                    with self._y:
                        self.take_x()
        """,
        expect="lock-order cycle between T._x and T._y",
    ),
    SeededCase(
        name="blocking-direct",
        rule="blocking-under-lock",
        relpath="runtime/_seed_bl1.py",
        source="""
            import threading
            import time

            class Pumper:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def nap(self) -> None:
                    with self._lock:
                        time.sleep(0.01)
        """,
        expect="sleep() in Pumper.nap while holding Pumper._lock",
    ),
    SeededCase(
        name="blocking-transitive",
        rule="blocking-under-lock",
        relpath="runtime/_seed_bl2.py",
        source="""
            import threading

            from repro.comm.core import Comm

            class Fetcher:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def _pump(self, comm: Comm) -> object:
                    return comm.recv()

                def fetch(self, comm: Comm) -> object:
                    with self._lock:
                        return self._pump(comm)
        """,
        expect="`self._pump(...)` can block while holding Fetcher._lock",
    ),
    SeededCase(
        name="wire-threading-object",
        rule="wire-safety",
        relpath="runtime/_seed_w1.py",
        source="""
            import threading

            from repro.comm.core import Comm

            def ship(comm: Comm) -> None:
                comm.send(("job", threading.Lock()))
        """,
        expect="threading.Lock() objects do not pickle",
    ),
    SeededCase(
        name="wire-local-class",
        rule="wire-safety",
        relpath="runtime/_seed_w2.py",
        source="""
            from repro.comm.core import Comm

            class NotWireSafe:
                def __init__(self) -> None:
                    self.fh = open("/dev/null")

            def ship(comm: Comm) -> None:
                comm.send(("result", NotWireSafe()))
        """,
        expect="constructs NotWireSafe, which is not in the wire set",
    ),
    SeededCase(
        name="wire-raw-buffer-plain-path",
        rule="wire-safety",
        relpath="runtime/_seed_w3.py",
        source="""
            from repro.comm import frame

            def ship(payload: bytearray) -> bytes:
                return frame.dumps(("data", memoryview(payload)))
        """,
        expect="ship raw buffers through the out-of-band API",
    ),
    SeededCase(
        name="protocol-unhandled-parent-tag",
        rule="protocol-exhaustive",
        relpath="runtime/_seed_p1.py",
        source="""
            from repro.comm.core import Comm

            class SeedClusterRuntime:
                def evict(self, comm: Comm, key: str) -> None:
                    comm.send(("evict", key))

                def ping(self, comm: Comm) -> None:
                    comm.send(("ping",))

            class SeedWorkerServer:
                def serve(self, comm: Comm) -> None:
                    while True:
                        msg = comm.recv()
                        tag = msg[0]
                        if tag == "ping":
                            comm.send(("pong",))
        """,
        expect="tag 'evict' sent by parent has no matching handler",
        extra_protocols=(
            ProtocolSpec(
                name="seed-p1",
                modules=("runtime/_seed_p1.py",),
                parent=ProtocolSide("parent", classes=("SeedClusterRuntime",)),
                worker=ProtocolSide("worker", classes=("SeedWorkerServer",)),
            ),
        ),
    ),
    SeededCase(
        name="protocol-unhandled-worker-tag",
        rule="protocol-exhaustive",
        relpath="runtime/_seed_p2.py",
        source="""
            from repro.comm.core import Comm

            class SeedClusterRuntime:
                def ask(self, comm: Comm) -> object:
                    comm.send(("ping",))
                    reply = comm.recv()
                    if reply[0] == "pong":
                        return reply
                    return None

            class SeedWorkerServer:
                def serve(self, comm: Comm) -> None:
                    msg = comm.recv()
                    tag = msg[0]
                    if tag == "ping":
                        comm.send(("pong",))
                    else:
                        comm.send(("weird", tag))
        """,
        expect="tag 'weird' sent by worker has no matching handler",
        extra_protocols=(
            ProtocolSpec(
                name="seed-p2",
                modules=("runtime/_seed_p2.py",),
                parent=ProtocolSide("parent", classes=("SeedClusterRuntime",)),
                worker=ProtocolSide("worker", classes=("SeedWorkerServer",)),
            ),
        ),
    ),
    SeededCase(
        name="protocol-unhandled-jobs-batch",
        rule="protocol-exhaustive",
        relpath="runtime/_seed_p3.py",
        source="""
            from repro.comm.core import Comm
            from repro.comm.frame import dumps, pack_frames

            class SeedBatchingRuntime:
                def ship(self, comm: Comm, msgs: list) -> None:
                    comm.send(("jobs", pack_frames([dumps(m) for m in msgs])))

                def ping(self, comm: Comm) -> None:
                    comm.send(("ping",))

            class SeedLegacyWorker:
                def serve(self, comm: Comm) -> None:
                    while True:
                        msg = comm.recv()
                        tag = msg[0]
                        if tag == "ping":
                            comm.send(("pong",))
                        elif tag == "job":
                            comm.send(("done", msg[1]))
        """,
        expect="tag 'jobs' sent by parent has no matching handler",
        extra_protocols=(
            ProtocolSpec(
                name="seed-p3",
                modules=("runtime/_seed_p3.py",),
                parent=ProtocolSide("parent", classes=("SeedBatchingRuntime",)),
                worker=ProtocolSide("worker", classes=("SeedLegacyWorker",)),
            ),
        ),
    ),
    SeededCase(
        name="lock-leak-bare-acquire",
        rule="lock-leak",
        relpath="runtime/_seed_l1.py",
        source="""
            import threading

            LOCK = threading.Lock()

            def unsafe_update(value: int) -> None:
                LOCK.acquire()
                if value < 0:
                    raise ValueError(value)
                LOCK.release()
        """,
        expect="`LOCK.acquire()` in unsafe_update has no `LOCK.release()` in a finally",
    ),
    SeededCase(
        name="lock-leak-straightline-close",
        rule="lock-leak",
        relpath="runtime/_seed_l2.py",
        source="""
            from repro.comm.tcp import Address, connect

            def probe(addr: Address) -> None:
                c = connect(addr)
                c.send(("ping",))
                c.recv()
                c.close()
        """,
        expect="closed (if at all) only on the straight-line path",
    ),
)


def run_selftest(verbose: bool = False) -> list[str]:
    """Run every seeded case; return a list of failure descriptions
    (empty means every rule convicted its planted bug)."""
    from repro.verify.report import load_modules
    from repro.verify.static import STATIC_RULES, run_static
    from repro.verify.static.wire import PROTOCOLS, ProtocolExhaustiveRule

    base = load_modules()
    failures: list[str] = []
    for case in SEEDED:
        fixture = case.module()
        rules = STATIC_RULES
        if case.extra_protocols:
            rules = tuple(
                ProtocolExhaustiveRule(PROTOCOLS + case.extra_protocols)
                if isinstance(r, ProtocolExhaustiveRule)
                else r
                for r in STATIC_RULES
            )
        findings = run_static(modules=[*base, fixture], rules=rules)
        hits = [
            f
            for f in findings
            if f.path == case.relpath and f.rule == case.rule and case.expect in f.message
        ]
        if not hits:
            near = [f for f in findings if f.path == case.relpath]
            failures.append(
                f"{case.name}: expected [{case.rule}] containing {case.expect!r}; "
                f"got {[str(f) for f in near] or 'no findings in fixture'}"
            )
        elif verbose:
            print(f"  convicted {case.name}: {hits[0]}")
    return failures
