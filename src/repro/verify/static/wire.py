"""Wire rules: picklable-payload safety and protocol exhaustiveness.

``wire-safety`` classifies every expression constructed into a
``Comm.send``/``frame.dumps``/``encode_message`` call against the known
wire set -- plain containers and scalars, the exceptions family,
:class:`~repro.graph.taskspec.BlockRef`, ``ShmDescriptor`` -- on a
three-valued lattice (SAFE / UNKNOWN / UNSAFE).  Only provably-UNSAFE
expressions are convicted (constructing a non-wire class, a threading
object, a lambda or generator into a frame); UNKNOWN values (parameters,
attribute loads) pass, because the runtime payloads they carry are
guarded dynamically by the frame codec.  This mirrors the analyzer-wide
bias: miss a finding before inventing one.

``protocol-exhaustive`` checks both directions of the two runtime
message protocols (cluster parent <-> :class:`WorkerServer`, procpool
parent <-> ``_worker_main``): every tag one side sends must have a
matching handler comparison on the other side, and every handler must
correspond to a tag the peer actually sends (dead handlers hide protocol
drift).  Sent tags are the leading string constants of tuples passed to
``.send(...)``; handled tags are string constants compared against a
*tag position* -- ``msg[0]``, a variable assigned from ``X[0]``, or the
head of a tuple-unpacked ``recv()`` -- so ordinary string comparisons in
the same function cannot pollute the handler set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.verify.report import Finding
from repro.verify.static.callgraph import Program, StaticRule, own_nodes

#: Non-exception classes blessed onto the wire.
WIRE_SAFE_CLASSES = frozenset(
    {"BlockRef", "ShmDescriptor", "Address", "PinnedRef", "Encoded"}
)

#: Scalar/container type names that are trivially picklable.
_SAFE_TYPE_NAMES = frozenset(
    {"bytes", "bytearray", "str", "int", "float", "bool", "complex", "NoneType",
     "BaseException", "Exception"}
)

#: Call names whose result is wire-safe by contract (serializers,
#: builtins returning scalars/containers of their scalar inputs).
_SAFE_CALL_NAMES = frozenset(
    {"len", "str", "repr", "bytes", "int", "float", "bool", "abs", "round",
     "min", "max", "sum", "sorted", "dumps", "encode_message", "pack_frame",
     "pack_frames", "perf_counter", "process_time", "monotonic", "time",
     "format", "encode_oob"}
)

#: Constructors that are never picklable -- except through the OOB API
#: (``send_oob``/``dumps_oob``/``encode_oob``), which exists precisely to
#: carry raw buffers: there, ``memoryview``/``PickleBuffer`` are the
#: whole point and classify SAFE.
_UNSAFE_BUILTINS = frozenset({"open", "memoryview", "PickleBuffer"})

#: Buffer constructors legal inside an OOB sink only.
_OOB_ONLY = frozenset({"memoryview", "PickleBuffer"})

#: Sinks that serialize with the protocol-5 out-of-band buffer path.
_OOB_SINKS = frozenset({"send_oob", "dumps_oob", "encode_oob", "encode_message_oob"})

#: Every serializer-call sink (plain and OOB) whose first argument goes
#: onto the wire.
_SERIALIZER_SINKS = frozenset({"dumps", "encode_message"}) | _OOB_SINKS


def _fold(verdicts: list[tuple[str, str]]) -> tuple[str, str]:
    for v in verdicts:
        if v[0] == "unsafe":
            return v
    for v in verdicts:
        if v[0] == "unknown":
            return v
    return ("safe", "")


def _local_assigns(fn) -> dict[str, list[ast.expr]]:
    out: dict[str, list[ast.expr]] = {}
    for node in own_nodes(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name):
                out.setdefault(t.id, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                out.setdefault(node.target.id, []).append(node.value)
    return out


class WireSafetyRule(StaticRule):
    """Everything constructed into a frame must be in the wire set."""

    name = "wire-safety"
    description = (
        "every expression sent through Comm.send/frame.dumps statically "
        "resolves to the picklable wire set (exceptions, BlockRef, "
        "ShmDescriptor, plain containers); provably-unpicklable "
        "constructions are convicted"
    )

    def check(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for fn in program.functions:
            assigns = _local_assigns(fn)
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                f = node.func
                arg: ast.expr | None = None
                oob = False
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in ("send", "send_oob")
                    and len(node.args) == 1
                ):
                    arg = node.args[0]
                    oob = f.attr in _OOB_SINKS
                elif (
                    (
                        isinstance(f, ast.Name)
                        and f.id in _SERIALIZER_SINKS
                    )
                    or (
                        isinstance(f, ast.Attribute)
                        and f.attr in _SERIALIZER_SINKS
                    )
                ) and node.args:
                    arg = node.args[0]
                    name = f.id if isinstance(f, ast.Name) else f.attr
                    oob = name in _OOB_SINKS
                if arg is None:
                    continue
                verdict, why = self._classify(program, fn, assigns, arg, 0, oob)
                if verdict == "unsafe":
                    findings.append(
                        Finding(
                            self.name,
                            fn.module.relpath,
                            node.lineno,
                            f"`{ast.unparse(arg)[:80]}` shipped onto the wire "
                            f"in {fn.qualname} is not wire-safe: {why}",
                        )
                    )
        return findings

    def _safe_type(self, program: Program, relpath: str, tname: str) -> bool:
        if tname in _SAFE_TYPE_NAMES or tname in WIRE_SAFE_CLASSES:
            return True
        c = program.resolve_class(tname, relpath)
        if c is not None and c.exceptionish:
            return True
        return tname.endswith(("Error", "Exception"))

    def _classify(
        self, program: Program, fn, assigns, expr: ast.expr, depth: int,
        oob: bool = False,
    ) -> tuple[str, str]:
        if depth > 6:
            return ("unknown", "")
        relpath = fn.module.relpath
        if isinstance(expr, ast.Constant):
            return ("safe", "")
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _fold(
                [
                    self._classify(program, fn, assigns, e, depth + 1, oob)
                    for e in expr.elts
                ]
            )
        if isinstance(expr, ast.Dict):
            parts = [k for k in expr.keys if k is not None] + list(expr.values)
            return _fold(
                [
                    self._classify(program, fn, assigns, e, depth + 1, oob)
                    for e in parts
                ]
            )
        if isinstance(expr, ast.Starred):
            return self._classify(program, fn, assigns, expr.value, depth + 1, oob)
        if isinstance(expr, ast.JoinedStr):
            return ("safe", "")
        if isinstance(expr, ast.IfExp):
            return _fold(
                [
                    self._classify(program, fn, assigns, expr.body, depth + 1, oob),
                    self._classify(program, fn, assigns, expr.orelse, depth + 1, oob),
                ]
            )
        if isinstance(expr, ast.Lambda):
            return ("unsafe", "lambdas do not pickle")
        if isinstance(expr, ast.GeneratorExp):
            return ("unsafe", "generators do not pickle")
        if isinstance(expr, ast.Name):
            values = assigns.get(expr.id)
            if values:
                return _fold(
                    [
                        self._classify(program, fn, assigns, v, depth + 1, oob)
                        for v in values
                    ]
                )
            types = fn.env.get(expr.id, ())
            if types and all(self._safe_type(program, relpath, t) for t in types):
                return ("safe", "")
            for t in types:
                c = program.resolve_class(t, relpath)
                if (
                    c is not None
                    and not c.exceptionish
                    and t not in WIRE_SAFE_CLASSES
                ):
                    return (
                        "unsafe",
                        f"`{expr.id}` is a {t} instance, which is not in the wire set",
                    )
            return ("unknown", "")
        if isinstance(expr, ast.Call):
            return self._classify_call(program, fn, assigns, expr, depth, oob)
        return ("unknown", "")

    def _classify_call(
        self, program: Program, fn, assigns, call: ast.Call, depth: int,
        oob: bool = False,
    ) -> tuple[str, str]:
        relpath = fn.module.relpath
        f = call.func
        if (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id == "threading"
        ):
            return ("unsafe", f"threading.{f.attr}() objects do not pickle")
        cname_builtin = None
        if isinstance(f, ast.Name):
            cname_builtin = f.id
        elif (
            isinstance(f, ast.Attribute)
            and isinstance(f.value, ast.Name)
            and f.value.id == "pickle"
            and f.attr == "PickleBuffer"
        ):
            cname_builtin = "PickleBuffer"
        if cname_builtin in _UNSAFE_BUILTINS:
            if oob and cname_builtin in _OOB_ONLY:
                return ("safe", "")
            if cname_builtin in _OOB_ONLY:
                return (
                    "unsafe",
                    f"{cname_builtin}() does not pickle on the plain frame "
                    "path; ship raw buffers through the out-of-band API "
                    "(Comm.send_oob / frame.dumps_oob)",
                )
            return ("unsafe", f"{cname_builtin}() objects do not pickle")
        targets = program._resolve_call_targets(
            call, fn.module, fn.env, fn.cls, expand=False
        )
        for tgt in targets:
            if tgt.qualname.endswith("__init__") and tgt.cls is not None:
                cname = tgt.cls.name
                if self._safe_type(program, relpath, cname):
                    return ("safe", "")
                return (
                    "unsafe",
                    f"constructs {cname}, which is not in the wire set "
                    "(exceptions, BlockRef, ShmDescriptor, plain containers)",
                )
            rets = [
                t
                for t in self._return_types(tgt)
                if t not in ("None",)
            ]
            if rets and all(self._safe_type(program, relpath, t) for t in rets):
                return ("safe", "")
        if isinstance(f, ast.Name):
            c = program.resolve_class(f.id, relpath)
            if c is not None:
                if self._safe_type(program, relpath, c.name):
                    return ("safe", "")
                return (
                    "unsafe",
                    f"constructs {c.name}, which is not in the wire set",
                )
            if f.id in _SAFE_CALL_NAMES or f.id in ("tuple", "list", "dict", "set", "frozenset"):
                return ("safe", "")
        if isinstance(f, ast.Attribute) and f.attr in _SAFE_CALL_NAMES:
            return ("safe", "")
        return ("unknown", "")

    def _return_types(self, tgt) -> tuple[str, ...]:
        from repro.verify.static.callgraph import _annotation_names

        return _annotation_names(tgt.node.returns)


# ---------------------------------------------------------------------------
# protocol exhaustiveness


@dataclass(frozen=True)
class ProtocolSide:
    name: str
    classes: tuple[str, ...] = ()
    functions: tuple[str, ...] = ()


@dataclass(frozen=True)
class ProtocolSpec:
    name: str
    modules: tuple[str, ...]
    parent: ProtocolSide
    worker: ProtocolSide


#: The two runtime message protocols.  Sides are matched by class (every
#: method) or by module-level function name (nested helpers included),
#: within any of the protocol's modules -- the pipelined dispatch mixin
#: lives in ``runtime/dispatch.py`` and handles the streamed per-job
#: replies (``done``/``fail``) for both runtimes.
PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        name="cluster",
        modules=("runtime/cluster.py", "runtime/dispatch.py"),
        parent=ProtocolSide(
            "parent", classes=("ClusterRuntime", "PipelinedDispatchMixin")
        ),
        worker=ProtocolSide("worker", classes=("WorkerServer", "_FetchingContext")),
    ),
    ProtocolSpec(
        name="procpool",
        modules=("runtime/procpool.py", "runtime/dispatch.py"),
        parent=ProtocolSide(
            "parent", classes=("ProcessRuntime", "PipelinedDispatchMixin")
        ),
        worker=ProtocolSide("worker", functions=("_worker_main", "_serve_job")),
    ),
)


class ProtocolExhaustiveRule(StaticRule):
    """Every sent tag has a peer handler; every handler has a sender."""

    name = "protocol-exhaustive"
    description = (
        "for each runtime message protocol, every tag one side sends has "
        "a matching handler branch on the other side, and no side keeps "
        "a handler for a tag its peer never sends"
    )

    def __init__(self, protocols: tuple[ProtocolSpec, ...] = PROTOCOLS) -> None:
        self.protocols = protocols

    def check(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for spec in self.protocols:
            parent_fns = self._side_functions(program, spec.modules, spec.parent)
            worker_fns = self._side_functions(program, spec.modules, spec.worker)
            if not parent_fns or not worker_fns:
                continue  # protocol module absent from this scan
            p_sent = self._sent_tags(program, parent_fns)
            w_sent = self._sent_tags(program, worker_fns)
            p_handled = self._handled_tags(parent_fns)
            w_handled = self._handled_tags(worker_fns)
            findings += self._diff(spec, "parent", "worker", p_sent, w_handled, w_sent)
            findings += self._diff(spec, "worker", "parent", w_sent, p_handled, p_sent)
        return findings

    def _diff(
        self,
        spec: ProtocolSpec,
        sender: str,
        receiver: str,
        sent: dict[str, tuple[str, int]],
        handled: dict[str, tuple[str, int]],
        peer_sent: dict[str, tuple[str, int]],
    ) -> list[Finding]:
        out: list[Finding] = []
        for tag in sorted(set(sent) - set(handled)):
            path, line = sent[tag]
            out.append(
                Finding(
                    self.name, path, line,
                    f"protocol '{spec.name}': tag {tag!r} sent by {sender} "
                    f"has no matching handler branch on {receiver}",
                )
            )
        for tag in sorted(set(handled) - set(peer_sent) - set(sent)):
            path, line = handled[tag]
            out.append(
                Finding(
                    self.name, path, line,
                    f"protocol '{spec.name}': {receiver} handles tag {tag!r} "
                    f"but {sender} never sends it (dead handler / drift)",
                )
            )
        return out

    def _side_functions(self, program: Program, modules: tuple[str, ...], side: ProtocolSide):
        out = []
        for fn in program.functions:
            if fn.module.relpath not in modules:
                continue
            if fn.cls is not None and fn.cls.name in side.classes:
                out.append(fn)
            elif fn.cls is None and fn.qualname.split(".")[0] in side.functions:
                out.append(fn)
        return out

    def _sent_tags(self, program: Program, fns) -> dict[str, tuple[str, int]]:
        """tag -> earliest (path, line) of a ``.send()``/``.send_oob()``
        shipping it."""
        out: dict[str, tuple[str, int]] = {}
        for fn in fns:
            assigns = _local_assigns(fn)
            consts = program.module_consts.get(fn.module.relpath, {})
            for node in own_nodes(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("send", "send_oob")
                    and len(node.args) == 1
                ):
                    continue
                arg = node.args[0]
                tuples: list[ast.Tuple] = []
                if isinstance(arg, ast.Tuple):
                    tuples.append(arg)
                elif isinstance(arg, ast.Name):
                    tuples += [
                        v for v in assigns.get(arg.id, []) if isinstance(v, ast.Tuple)
                    ]
                    mc = consts.get(arg.id)
                    if isinstance(mc, ast.Tuple):
                        tuples.append(mc)
                for t in tuples:
                    if (
                        t.elts
                        and isinstance(t.elts[0], ast.Constant)
                        and isinstance(t.elts[0].value, str)
                    ):
                        tag = t.elts[0].value
                        loc = (fn.module.relpath, node.lineno)
                        if tag not in out or loc < out[tag]:
                            out[tag] = loc
        return out

    def _handled_tags(self, fns) -> dict[str, tuple[str, int]]:
        """tag -> earliest (path, line) of a comparison handling it."""
        out: dict[str, tuple[str, int]] = {}

        def record(tag: str, path: str, line: int) -> None:
            loc = (path, line)
            if tag not in out or loc < out[tag]:
                out[tag] = loc

        for fn in fns:
            tagvars: set[str] = set()
            msgvars: set[str] = set()
            for node in own_nodes(fn.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    t, v = node.targets[0], node.value
                    is_recv = (
                        isinstance(v, ast.Call)
                        and isinstance(v.func, ast.Attribute)
                        and v.func.attr == "recv"
                    )
                    if isinstance(t, ast.Name):
                        if (
                            isinstance(v, ast.Subscript)
                            and isinstance(v.slice, ast.Constant)
                            and v.slice.value == 0
                        ):
                            tagvars.add(t.id)
                        elif is_recv:
                            msgvars.add(t.id)
                    elif isinstance(t, ast.Tuple) and is_recv:
                        if t.elts and isinstance(t.elts[0], ast.Name):
                            tagvars.add(t.elts[0].id)

            def is_tag_side(e: ast.expr) -> bool:
                if (
                    isinstance(e, ast.Subscript)
                    and isinstance(e.slice, ast.Constant)
                    and e.slice.value == 0
                ):
                    return True
                return isinstance(e, ast.Name) and e.id in tagvars

            def is_msg_side(e: ast.expr) -> bool:
                return isinstance(e, ast.Name) and e.id in msgvars

            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Compare):
                    continue
                if not all(
                    isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
                    for op in node.ops
                ):
                    continue
                sides = [node.left, *node.comparators]
                if any(is_tag_side(s) for s in sides):
                    for s in sides:
                        if isinstance(s, ast.Constant) and isinstance(s.value, str):
                            record(s.value, fn.module.relpath, node.lineno)
                        elif isinstance(s, ast.Tuple):
                            for e in s.elts:
                                if isinstance(e, ast.Constant) and isinstance(
                                    e.value, str
                                ):
                                    record(e.value, fn.module.relpath, node.lineno)
                elif any(is_msg_side(s) for s in sides):
                    for s in sides:
                        if (
                            isinstance(s, ast.Tuple)
                            and s.elts
                            and isinstance(s.elts[0], ast.Constant)
                            and isinstance(s.elts[0].value, str)
                        ):
                            record(s.elts[0].value, fn.module.relpath, node.lineno)
        return out
