"""Tests for the Section V work/span/completion-time bounds."""

import pytest

from repro.analysis.bounds import bound_report, nabbit_bound
from repro.core import run_scheduler
from repro.graph.builders import chain_graph, diamond_graph, grid_graph
from repro.runtime import SimulatedRuntime


class TestBoundAlgebra:
    def test_fault_free_chain(self):
        g = chain_graph(10)
        rep = bound_report(g, workers=1)
        assert rep.t1 == 10 + 9  # cost + notification edges
        assert rep.t_inf == 10.0
        assert rep.max_executions == 1
        assert rep.max_path_nodes == 10

    def test_reexecutions_inflate_bound(self):
        g = chain_graph(10)
        a = bound_report(g, workers=4)
        b = bound_report(g, {3: 5}, workers=4)
        assert b.completion_bound > a.completion_bound
        assert b.max_executions == 5

    def test_more_workers_lower_work_term(self):
        g = grid_graph(8, 8)
        b1 = bound_report(g, workers=1)
        b16 = bound_report(g, workers=16)
        assert b16.completion_bound < b1.completion_bound

    def test_average_parallelism(self):
        g = diamond_graph(width=10)
        rep = bound_report(g, workers=4)
        assert rep.average_parallelism > 1.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            bound_report(chain_graph(3), workers=0)


class TestBoundVsMeasurement:
    @pytest.mark.parametrize("workers", [1, 4, 16])
    def test_measured_makespan_within_bound(self, workers):
        # The bound is asymptotic (big-O); measured virtual time with the
        # default cost model must sit within a small constant of it.
        g = grid_graph(8, 8, cost=lambda k: 50.0)
        res = run_scheduler(g, runtime=SimulatedRuntime(workers=workers, seed=3))
        rep = bound_report(g, res.trace.executions(), workers=workers)
        # Scale the compute terms: spec cost 50 per task.
        assert res.makespan <= 60.0 * rep.completion_bound

    def test_bound_reduces_to_nabbit_without_faults(self):
        g = grid_graph(6, 6)
        rep = bound_report(g, None, workers=8)
        nb = nabbit_bound(g, workers=8)
        # Same order of magnitude when N == 1 (the paper's reduction).
        assert rep.max_executions == 1
        assert rep.completion_bound <= 50 * nb

    def test_check_helper(self):
        g = chain_graph(5)
        rep = bound_report(g, workers=1)
        assert rep.check(rep.completion_bound * 0.5)
        assert not rep.check(rep.completion_bound * 2.0)
