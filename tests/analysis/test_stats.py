"""Unit tests for summary statistics."""

import math

import pytest

from repro.analysis.stats import Summary, geometric_mean, percent_overhead, speedup, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(math.sqrt(2 / 3))
        assert s.n == 3

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestOverheadAndSpeedup:
    def test_percent_overhead(self):
        assert percent_overhead(110.0, 100.0) == pytest.approx(10.0)

    def test_negative_overhead_allowed(self):
        assert percent_overhead(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            percent_overhead(1.0, 0.0)

    def test_speedup(self):
        assert speedup(100.0, 25.0) == 4.0

    def test_speedup_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])
