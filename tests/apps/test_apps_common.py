"""Shared per-application spec contract tests, parameterized over all five
benchmarks (the ``tiny_app`` fixture in conftest.py)."""

import pytest

from repro.core import run_scheduler
from repro.faults.selectors import VersionIndex
from repro.graph.analysis import collect_tasks, graph_stats
from repro.graph.taskspec import BlockRef
from repro.graph.validate import validate_spec
from repro.runtime import SimulatedRuntime, ThreadedRuntime


class TestSpecContract:
    def test_structure_valid(self, tiny_app):
        assert validate_spec(tiny_app) > 0

    def test_every_input_produced_by_a_predecessor_or_pinned(self, tiny_app):
        """Recovery routing requires producer(input) in preds (or pinned
        input data): RESETNODE repairs inputs by re-traversing preds."""
        store = tiny_app.make_store(True)
        for key in collect_tasks(tiny_app):
            preds = set(tiny_app.predecessors(key))
            for raw in tiny_app.inputs(key):
                ref = BlockRef(*raw)
                producer = tiny_app.producer(ref)
                if producer is None:
                    assert store.is_pinned(ref), f"{key}: unpinned inputless {ref}"
                else:
                    assert producer in preds, f"{key}: producer {producer} of {ref} not a pred"

    def test_outputs_produced_by_self(self, tiny_app):
        for key in collect_tasks(tiny_app):
            for raw in tiny_app.outputs(key):
                assert tiny_app.producer(BlockRef(*raw)) == key

    def test_pred_order_deterministic(self, tiny_app):
        for key in collect_tasks(tiny_app):
            assert tuple(tiny_app.predecessors(key)) == tuple(tiny_app.predecessors(key))

    def test_costs_positive(self, tiny_app):
        assert all(tiny_app.cost(k) > 0 for k in collect_tasks(tiny_app))

    def test_version_index_builds(self, tiny_app):
        idx = VersionIndex(tiny_app)
        counts = idx.type_counts()
        assert all(v > 0 for v in counts.values())


class TestExecution:
    def test_inline_run_verifies(self, tiny_app):
        store = tiny_app.make_store(True)
        res = run_scheduler(tiny_app, store=store)
        tiny_app.verify(store)
        assert res.trace.reexecutions == 0

    @pytest.mark.parametrize("workers", [2, 5])
    def test_simulated_parallel_verifies(self, tiny_app, workers):
        store = tiny_app.make_store(True)
        run_scheduler(
            tiny_app, runtime=SimulatedRuntime(workers=workers, seed=workers), store=store
        )
        tiny_app.verify(store)

    def test_baseline_scheduler_verifies(self, tiny_app):
        store = tiny_app.make_store(False)
        run_scheduler(
            tiny_app,
            runtime=SimulatedRuntime(workers=3, seed=1),
            store=store,
            fault_tolerant=False,
        )
        tiny_app.verify(store)

    def test_threaded_runtime_verifies(self, tiny_app):
        store = tiny_app.make_store(True)
        run_scheduler(tiny_app, runtime=ThreadedRuntime(workers=4, seed=2), store=store)
        tiny_app.verify(store)


class TestLightMode:
    def test_light_mode_same_makespan(self, tiny_app):
        from repro.apps import make_app

        heavy = run_scheduler(
            tiny_app,
            runtime=SimulatedRuntime(workers=3, seed=7),
            store=tiny_app.make_store(True),
        )
        light_app = make_app(tiny_app.name, scale="tiny", light=True)
        light = run_scheduler(
            light_app,
            runtime=SimulatedRuntime(workers=3, seed=7),
            store=light_app.make_store(True),
        )
        assert light.makespan == pytest.approx(heavy.makespan)
        assert light.trace.total_computes == heavy.trace.total_computes


class TestDescribe:
    def test_describe_mentions_shape(self, tiny_app):
        d = tiny_app.describe()
        assert tiny_app.name in d
        assert str(tiny_app.config.block) in d
