"""Per-application structure and semantics tests beyond the shared contract."""

import numpy as np
import pytest

from repro.apps import AppConfig, make_app
from repro.apps.lcs import lcs_reference
from repro.apps.smith_waterman import sw_reference
from repro.core import run_scheduler
from repro.graph.analysis import graph_stats
from repro.graph.taskspec import BlockRef


class TestLCS:
    def test_table1_closed_forms_small(self):
        app = make_app("lcs", AppConfig(n=128, block=16))  # B = 8
        st = graph_stats(app)
        B = 8
        assert st.tasks == B * B
        assert st.edges == 2 * B * (B - 1) + (B - 1) ** 2
        assert st.critical_path == 2 * (B - 1)

    def test_known_sequences(self):
        app = make_app("lcs", AppConfig(n=32, block=8, seed=7))
        ref = lcs_reference(app.x, app.y)
        store = app.make_store(True)
        run_scheduler(app, store=store)
        assert app.extract(store) == ref

    def test_single_assignment_policy(self):
        app = make_app("lcs", scale="tiny")
        assert app.baseline_policy.is_single_assignment
        assert app.ft_policy.is_single_assignment


class TestSW:
    def test_buffer_rotation_block_ids(self):
        app = make_app("sw", scale="tiny")
        assert app.block_of((0, 2)) == BlockRef(("sw", 0, 2), 0)
        assert app.block_of((1, 2)) == BlockRef(("sw", 1, 2), 0)
        assert app.block_of((2, 2)) == BlockRef(("sw", 0, 2), 1)
        assert app.block_of((3, 2)) == BlockRef(("sw", 1, 2), 1)

    def test_producer_inverse_of_block_of(self):
        app = make_app("sw", scale="tiny")
        B = app.config.blocks
        for i in range(B):
            for j in range(B):
                assert app.producer(app.block_of((i, j))) == (i, j)

    def test_anti_dependence_edges_present(self):
        app = make_app("sw", scale="tiny")
        assert (1, 2) in app.predecessors((2, 1))
        assert (2, 1) in app.successors((1, 2))

    def test_score_matches_reference(self):
        app = make_app("sw", AppConfig(n=48, block=16, seed=3))
        store = app.make_store(True)
        run_scheduler(app, store=store)
        assert app.extract(store) == sw_reference(app.x, app.y)

    def test_reuse_evicts_old_rows(self):
        app = make_app("sw", scale="tiny")
        store = app.make_store(True)
        run_scheduler(app, store=store)
        assert store.stats.evictions > 0


class TestFW:
    def test_paper_structure_at_small_scale(self):
        app = make_app("fw", AppConfig(n=64, block=8))  # B = 8
        st = graph_stats(app)
        B = 8
        assert st.tasks == B ** 3 + 1  # + collection sink
        # The closed form verified against the paper's E = 308880 at B=40:
        # k=0 data edges, k>=1 data edges (diag 1, panels 4(B-1),
        # interiors 3(B-1)^2), WAR anti-edges per overwriting step, sink.
        expected = (
            (2 * (B - 1) + 2 * (B - 1) ** 2)                       # k = 0
            + (B - 1) * (1 + 4 * (B - 1) + 3 * (B - 1) ** 2)       # k >= 1
            + (B - 1) * (2 * (B - 1) ** 2 + 2 * (B - 1))           # anti-edges
            + B * B                                                # sink
        )
        assert st.edges == expected
        assert st.critical_path + 1 == 3 * B + 1  # 3B nodes + sink

    def test_matches_scipy(self):
        from scipy.sparse.csgraph import floyd_warshall

        app = make_app("fw", AppConfig(n=24, block=8, seed=5))
        store = app.make_store(True)
        run_scheduler(app, store=store)
        got = app.extract(store)
        ref = floyd_warshall(app.d0)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    def test_two_version_policy_for_ft_only(self):
        app = make_app("fw", scale="tiny")
        assert app.baseline_policy.keep == 1
        assert app.ft_policy.keep == 2

    def test_sink_reads_all_final_versions(self):
        app = make_app("fw", scale="tiny")
        B = app.config.blocks
        assert len(app.inputs("sink")) == B * B
        assert len(app.predecessors("sink")) == B * B


class TestLU:
    def test_task_count_closed_form(self):
        app = make_app("lu", AppConfig(n=48, block=8))  # B = 6
        st = graph_stats(app)
        B = 6
        assert st.tasks == B * (B + 1) * (2 * B + 1) // 6
        assert st.critical_path + 1 == 3 * (B - 1) + 1

    def test_factorization_reconstructs_input(self):
        app = make_app("lu", AppConfig(n=32, block=8, seed=11))
        store = app.make_store(True)
        run_scheduler(app, store=store)
        lu = app.extract(store)
        l = np.tril(lu, -1) + np.eye(32)
        u = np.triu(lu)
        np.testing.assert_allclose(l @ u, app.a0, rtol=1e-9, atol=1e-9)

    def test_sink_is_last_getrf(self):
        app = make_app("lu", scale="tiny")
        assert app.sink_key() == ("getrf", app.config.blocks - 1)


class TestCholesky:
    def test_task_count_closed_form(self):
        app = make_app("cholesky", AppConfig(n=48, block=8))  # B = 6
        st = graph_stats(app)
        expected = sum(1 + (m - 1) + (m - 1) * m // 2 for m in range(1, 7))
        assert st.tasks == expected

    def test_factor_matches_numpy(self):
        app = make_app("cholesky", AppConfig(n=32, block=8, seed=13))
        store = app.make_store(True)
        run_scheduler(app, store=store)
        np.testing.assert_allclose(
            app.extract(store), np.linalg.cholesky(app.a0), rtol=1e-9, atol=1e-9
        )

    def test_syrk_tasks_deduplicate_preds(self):
        app = make_app("cholesky", scale="tiny")
        preds = app.predecessors(("upd", 0, 2, 2))
        assert len(preds) == len(set(preds))
        assert ("trsm", 0, 2) in preds


class TestConfig:
    def test_block_must_divide_n(self):
        with pytest.raises(ValueError):
            AppConfig(n=100, block=16)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            AppConfig(n=0, block=1)

    def test_blocks_property(self):
        assert AppConfig(n=64, block=16).blocks == 4
