"""Tests for the Application base class surface."""

import numpy as np
import pytest

from repro.apps import AppConfig, make_app
from repro.apps.base import ordered_preds
from repro.graph.taskspec import BlockRef


class TestOrderedPreds:
    def test_filters_by_flag(self):
        assert ordered_preds((True, "a"), (False, "b"), (True, "c")) == ("a", "c")

    def test_empty(self):
        assert ordered_preds() == ()
        assert ordered_preds((False, "x")) == ()

    def test_order_preserved(self):
        out = ordered_preds((True, 3), (True, 1), (True, 2))
        assert out == (3, 1, 2)


class TestMakeStore:
    def test_ft_store_uses_ft_policy(self):
        app = make_app("fw", scale="tiny")
        assert app.make_store(True).policy.keep == 2
        assert app.make_store(False).policy.keep == 1

    def test_store_is_seeded(self):
        app = make_app("lu", scale="tiny")
        store = app.make_store(True)
        assert store.is_pinned(BlockRef(("a", 0, 0), 0))

    def test_lcs_has_no_pinned_blocks(self):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        assert not store.is_pinned(BlockRef(("lcs", (0, 0)), 0))


class TestVerify:
    def test_verify_detects_wrong_result(self):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        # Forge a wrong sink block.
        b = app.config.block
        store.write(
            BlockRef(("lcs", app.sink_key()), 0),
            (np.full(b, 9999, dtype=np.int32), np.full(b, 9999, dtype=np.int32)),
        )
        with pytest.raises(AssertionError):
            app.verify(store)

    def test_light_mode_cannot_verify(self):
        app = make_app("lcs", scale="tiny", light=True)
        store = app.make_store(True)
        from repro.core import run_scheduler

        run_scheduler(app, store=store)
        with pytest.raises(Exception):
            app.verify(store)  # token payloads are not numeric results


class TestLightCompute:
    def test_light_reads_all_inputs(self):
        # Light mode must preserve fault detection: a corrupted input
        # block is still observed.
        from repro.core import FTScheduler
        from repro.faults.injector import FaultInjector
        from repro.faults.model import FaultPlan
        from repro.runtime import InlineRuntime
        from repro.runtime.tracing import ExecutionTrace

        app = make_app("lu", scale="tiny", light=True)
        store = app.make_store(True)
        trace = ExecutionTrace()
        plan = FaultPlan.single(("getrf", 0), "after_notify")
        injector = FaultInjector(plan, app, store, trace)
        FTScheduler(app, InlineRuntime(), store=store, hooks=injector, trace=trace).run()
        assert trace.recoveries[("getrf", 0)] == 1
