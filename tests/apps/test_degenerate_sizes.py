"""Degenerate problem sizes: single-block and single-column instances."""

import pytest

from repro.apps import AppConfig, make_app
from repro.core import run_scheduler
from repro.graph.validate import validate_spec
from repro.runtime import SimulatedRuntime


class TestSingleBlock:
    """B = 1: the graph degenerates to a handful of tasks (or one)."""

    @pytest.mark.parametrize("name,n", [("lcs", 16), ("sw", 16), ("lu", 8), ("cholesky", 8)])
    def test_single_block_runs_and_verifies(self, name, n):
        app = make_app(name, AppConfig(n=n, block=n))
        assert validate_spec(app) >= 1
        store = app.make_store(True)
        run_scheduler(app, store=store)
        app.verify(store)

    def test_fw_single_block(self):
        app = make_app("fw", AppConfig(n=8, block=8))
        assert validate_spec(app) == 2  # the one diag task + the sink
        store = app.make_store(True)
        run_scheduler(app, store=store)
        app.verify(store)


class TestTwoBlocks:
    @pytest.mark.parametrize("name,n,b", [
        ("lcs", 32, 16), ("sw", 32, 16), ("fw", 16, 8), ("lu", 16, 8), ("cholesky", 16, 8),
    ])
    def test_two_blocks_parallel(self, name, n, b):
        app = make_app(name, AppConfig(n=n, block=b))
        store = app.make_store(True)
        run_scheduler(app, runtime=SimulatedRuntime(workers=3, seed=1), store=store)
        app.verify(store)

    def test_two_block_fault_recovery(self):
        from repro.core import FTScheduler
        from repro.faults.injector import FaultInjector
        from repro.faults.model import FaultPlan
        from repro.runtime.tracing import ExecutionTrace

        app = make_app("lu", AppConfig(n=16, block=8))
        store = app.make_store(True)
        trace = ExecutionTrace()
        injector = FaultInjector(
            FaultPlan.single(("getrf", 0), "after_compute"), app, store, trace
        )
        FTScheduler(app, SimulatedRuntime(workers=2, seed=0),
                    store=store, hooks=injector, trace=trace).run()
        app.verify(store)
        assert trace.recoveries[("getrf", 0)] == 1


class TestOddShapes:
    def test_nonsquare_block_counts_rejected(self):
        with pytest.raises(ValueError):
            AppConfig(n=100, block=33)

    def test_large_block_small_n(self):
        app = make_app("lcs", AppConfig(n=8, block=8))
        store = app.make_store(True)
        run_scheduler(app, store=store)
        app.verify(store)
