"""Numerical kernel tests against naive references."""

import numpy as np
import pytest
from scipy.linalg import solve_triangular

from repro.apps.kernels import (
    chol_potrf,
    chol_trsm,
    chol_update,
    fw_diag,
    fw_minplus,
    fw_panel_col,
    fw_panel_row,
    gemm_update,
    lcs_block,
    lu_getrf,
    lu_trsm_col,
    lu_trsm_row,
    sw_block,
)

RNG = np.random.default_rng(42)


def naive_lcs_full(x, y):
    n, m = len(x), len(y)
    g = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if x[i - 1] == y[j - 1]:
                g[i, j] = g[i - 1, j - 1] + 1
            else:
                g[i, j] = max(g[i - 1, j], g[i, j - 1])
    return g


def naive_sw_full(x, y, match=2, mismatch=1, gap=1):
    n, m = len(x), len(y)
    g = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if x[i - 1] == y[j - 1] else -mismatch
            g[i, j] = max(0, g[i - 1, j - 1] + s, g[i - 1, j] - gap, g[i, j - 1] - gap)
    return g


class TestLCSBlock:
    def test_whole_matrix_as_one_block(self):
        x = RNG.integers(0, 4, 12).astype(np.int8)
        y = RNG.integers(0, 4, 9).astype(np.int8)
        full = naive_lcs_full(x, y)
        bottom, right = lcs_block(x, y, np.zeros(9, np.int32), np.zeros(12, np.int32), 0)
        np.testing.assert_array_equal(bottom, full[-1, 1:])
        np.testing.assert_array_equal(right, full[1:, -1])

    def test_blocked_equals_unblocked(self):
        x = RNG.integers(0, 3, 8).astype(np.int8)
        y = RNG.integers(0, 3, 8).astype(np.int8)
        full = naive_lcs_full(x, y)
        # Compute the (1,1) quadrant from boundary rows of the full DP.
        top = full[4, 5:].astype(np.int32)
        left = full[5:, 4].astype(np.int32)
        corner = int(full[4, 4])
        bottom, right = lcs_block(x[4:], y[4:], top, left, corner)
        np.testing.assert_array_equal(bottom, full[-1, 5:])
        np.testing.assert_array_equal(right, full[5:, -1])

    def test_rectangular_block(self):
        x = RNG.integers(0, 4, 5).astype(np.int8)
        y = RNG.integers(0, 4, 11).astype(np.int8)
        full = naive_lcs_full(x, y)
        bottom, right = lcs_block(x, y, np.zeros(11, np.int32), np.zeros(5, np.int32), 0)
        np.testing.assert_array_equal(bottom, full[-1, 1:])
        np.testing.assert_array_equal(right, full[1:, -1])


class TestSWBlock:
    def test_whole_matrix(self):
        x = RNG.integers(0, 4, 10).astype(np.int8)
        y = RNG.integers(0, 4, 10).astype(np.int8)
        full = naive_sw_full(x, y)
        bottom, right, mx = sw_block(x, y, np.zeros(10, np.int32), np.zeros(10, np.int32), 0)
        np.testing.assert_array_equal(bottom, full[-1, 1:])
        np.testing.assert_array_equal(right, full[1:, -1])
        assert mx == full[1:, 1:].max()

    def test_zero_floor(self):
        # All mismatches: every score clips at zero.
        x = np.zeros(6, np.int8)
        y = np.ones(6, np.int8)
        bottom, right, mx = sw_block(x, y, np.zeros(6, np.int32), np.zeros(6, np.int32), 0)
        assert mx == 0
        assert (bottom == 0).all() and (right == 0).all()


class TestFWKernels:
    def setup_method(self):
        self.d = RNG.uniform(1, 10, (6, 6))
        np.fill_diagonal(self.d, 0.0)

    def test_diag_matches_pointwise_fw(self):
        ref = self.d.copy()
        for t in range(6):
            for i in range(6):
                for j in range(6):
                    ref[i, j] = min(ref[i, j], ref[i, t] + ref[t, j])
        np.testing.assert_allclose(fw_diag(self.d), ref)

    def test_minplus(self):
        a = RNG.uniform(1, 5, (4, 3))
        b = RNG.uniform(1, 5, (3, 4))
        d = RNG.uniform(1, 5, (4, 4))
        ref = d.copy()
        for i in range(4):
            for j in range(4):
                ref[i, j] = min(ref[i, j], (a[i, :] + b[:, j]).min())
        np.testing.assert_allclose(fw_minplus(d, a, b), ref)

    def test_panel_row_in_place_semantics(self):
        diag_new = fw_diag(self.d)
        panel = RNG.uniform(1, 10, (6, 4))
        ref = panel.copy()
        for t in range(6):
            for r in range(6):
                for c in range(4):
                    ref[r, c] = min(ref[r, c], diag_new[r, t] + ref[t, c])
        np.testing.assert_allclose(fw_panel_row(diag_new, panel), ref)

    def test_panel_col_in_place_semantics(self):
        diag_new = fw_diag(self.d)
        panel = RNG.uniform(1, 10, (4, 6))
        ref = panel.copy()
        for t in range(6):
            for r in range(4):
                for c in range(6):
                    ref[r, c] = min(ref[r, c], ref[r, t] + diag_new[t, c])
        np.testing.assert_allclose(fw_panel_col(diag_new, panel), ref)

    def test_inputs_not_mutated(self):
        before = self.d.copy()
        fw_diag(self.d)
        np.testing.assert_array_equal(self.d, before)


class TestLUKernels:
    def test_getrf_reconstructs(self):
        a = RNG.uniform(-1, 1, (8, 8)) + 8 * np.eye(8)
        lu = lu_getrf(a)
        l = np.tril(lu, -1) + np.eye(8)
        u = np.triu(lu)
        np.testing.assert_allclose(l @ u, a, rtol=1e-10, atol=1e-10)

    def test_getrf_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            lu_getrf(np.zeros((3, 3)))

    def test_trsm_row(self):
        a = RNG.uniform(-1, 1, (5, 5)) + 5 * np.eye(5)
        lu = lu_getrf(a)
        rhs = RNG.uniform(-1, 1, (5, 7))
        out = lu_trsm_row(lu, rhs)
        l = np.tril(lu, -1) + np.eye(5)
        np.testing.assert_allclose(l @ out, rhs, rtol=1e-10, atol=1e-10)

    def test_trsm_col(self):
        a = RNG.uniform(-1, 1, (5, 5)) + 5 * np.eye(5)
        lu = lu_getrf(a)
        rhs = RNG.uniform(-1, 1, (7, 5))
        out = lu_trsm_col(lu, rhs)
        u = np.triu(lu)
        np.testing.assert_allclose(out @ u, rhs, rtol=1e-10, atol=1e-10)

    def test_gemm_update(self):
        a = RNG.uniform(-1, 1, (4, 4))
        l = RNG.uniform(-1, 1, (4, 3))
        r = RNG.uniform(-1, 1, (3, 4))
        np.testing.assert_allclose(gemm_update(a, l, r), a - l @ r)

    def test_blocked_equals_unblocked_lu(self):
        n, b = 12, 4
        a = RNG.uniform(-1, 1, (n, n)) + n * np.eye(n)
        ref = lu_getrf(a)
        # Manual 3x3 tiled right-looking factorization using the kernels.
        tiles = {
            (i, j): a[i * b:(i + 1) * b, j * b:(j + 1) * b].copy()
            for i in range(3) for j in range(3)
        }
        for k in range(3):
            tiles[k, k] = lu_getrf(tiles[k, k])
            for j in range(k + 1, 3):
                tiles[k, j] = lu_trsm_row(tiles[k, k], tiles[k, j])
            for i in range(k + 1, 3):
                tiles[i, k] = lu_trsm_col(tiles[k, k], tiles[i, k])
            for i in range(k + 1, 3):
                for j in range(k + 1, 3):
                    tiles[i, j] = gemm_update(tiles[i, j], tiles[i, k], tiles[k, j])
        got = np.block([[tiles[i, j] for j in range(3)] for i in range(3)])
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-9)


class TestCholeskyKernels:
    def test_potrf(self):
        m = RNG.uniform(-1, 1, (6, 6))
        a = m @ m.T + 6 * np.eye(6)
        l = chol_potrf(a)
        np.testing.assert_allclose(l @ l.T, a, rtol=1e-10, atol=1e-10)
        assert np.allclose(np.triu(l, 1), 0)

    def test_trsm(self):
        m = RNG.uniform(-1, 1, (5, 5))
        a = m @ m.T + 5 * np.eye(5)
        l_kk = chol_potrf(a)
        panel = RNG.uniform(-1, 1, (7, 5))
        out = chol_trsm(l_kk, panel)
        np.testing.assert_allclose(out @ l_kk.T, panel, rtol=1e-10, atol=1e-10)

    def test_update_syrk(self):
        a = RNG.uniform(-1, 1, (4, 4))
        l = RNG.uniform(-1, 1, (4, 3))
        np.testing.assert_allclose(chol_update(a, l, l), a - l @ l.T)

    def test_blocked_equals_numpy_cholesky(self):
        n, b = 12, 4
        m = RNG.uniform(-1, 1, (n, n))
        a = m @ m.T + n * np.eye(n)
        ref = np.linalg.cholesky(a)
        tiles = {
            (i, j): a[i * b:(i + 1) * b, j * b:(j + 1) * b].copy()
            for i in range(3) for j in range(i + 1)
        }
        for k in range(3):
            tiles[k, k] = chol_potrf(tiles[k, k])
            for i in range(k + 1, 3):
                tiles[i, k] = chol_trsm(tiles[k, k], tiles[i, k])
            for i in range(k + 1, 3):
                for j in range(k + 1, i + 1):
                    tiles[i, j] = chol_update(tiles[i, j], tiles[i, k], tiles[j, k])
        got = np.zeros((n, n))
        for (i, j), t in tiles.items():
            got[i * b:(i + 1) * b, j * b:(j + 1) * b] = t
        np.testing.assert_allclose(np.tril(got), ref, rtol=1e-9, atol=1e-9)
