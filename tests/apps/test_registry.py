"""Unit tests for the application registry and loss scaling."""

import pytest

from repro.apps.registry import (
    APP_NAMES,
    DEFAULT_CONFIGS,
    PAPER_CONFIGS,
    PAPER_TASK_COUNTS,
    TINY_CONFIGS,
    _task_count,
    make_app,
    scaled_loss,
)
from repro.graph.analysis import collect_tasks


class TestMakeApp:
    @pytest.mark.parametrize("name", APP_NAMES)
    @pytest.mark.parametrize("scale", ["tiny", "default"])
    def test_scales(self, name, scale):
        app = make_app(name, scale=scale)
        assert app.name == name
        assert not app.light

    def test_light_flag(self):
        assert make_app("lcs", scale="tiny", light=True).light

    def test_unknown_app(self):
        with pytest.raises(ValueError, match="unknown app"):
            make_app("quantum")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            make_app("lcs", scale="galactic")

    def test_explicit_config_wins(self):
        from repro.apps import AppConfig

        app = make_app("lcs", AppConfig(n=64, block=32))
        assert app.config.blocks == 2


class TestTaskCountFormulas:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_closed_form_matches_materialized_graph(self, name):
        cfg = TINY_CONFIGS[name]
        app = make_app(name, cfg, light=True)
        assert _task_count(name, cfg) == len(collect_tasks(app))

    def test_paper_counts_match_formulas_where_reconstructible(self):
        # LCS / LU / Cholesky formulas reproduce Table I exactly; FW is
        # off by our one collection sink; SW is a documented substitution.
        assert _task_count("lcs", PAPER_CONFIGS["lcs"]) == PAPER_TASK_COUNTS["lcs"]
        assert _task_count("lu", PAPER_CONFIGS["lu"]) == PAPER_TASK_COUNTS["lu"]
        assert _task_count("cholesky", PAPER_CONFIGS["cholesky"]) == PAPER_TASK_COUNTS["cholesky"]
        assert _task_count("fw", PAPER_CONFIGS["fw"]) == PAPER_TASK_COUNTS["fw"] + 1


class TestScaledLoss:
    def test_proportionality(self):
        # LCS default: 2304 of 65536 tasks -> 512 scales to 18.
        assert scaled_loss("lcs", 512) == 18

    def test_minimum_one(self):
        assert scaled_loss("lu", 1) == 1

    def test_uses_paper_reported_counts_for_sw(self):
        # SW must scale against the paper's 132650, not our 2304.
        assert scaled_loss("sw", 512) == round(512 * 2304 / 132650)


class TestLargeConfigs:
    def test_large_scale_instantiates(self):
        from repro.apps.registry import LARGE_CONFIGS

        for name in APP_NAMES:
            app = make_app(name, scale="large", light=True)
            assert app.config == LARGE_CONFIGS[name]

    def test_large_has_more_parallelism_than_default(self):
        # The point of the large configs: structural parallelism that
        # does not saturate at 44 workers.
        from repro.graph.analysis import graph_stats

        for name in ("lcs", "sw"):
            large = graph_stats(make_app(name, scale="large", light=True))
            default = graph_stats(make_app(name, scale="default", light=True))
            assert large.average_parallelism > 1.9 * default.average_parallelism
        # LCS at B=96 clears the 44-worker mark; SW's anti-dependence
        # edges cap it near B/3 (the reason its Figure 4 curve tops out
        # around 30x -- see EXPERIMENTS.md).
        lcs = graph_stats(make_app("lcs", scale="large", light=True))
        assert lcs.average_parallelism > 44
