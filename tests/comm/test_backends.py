"""Backend contract tests: every transport speaks the same Comm surface,
and peer loss on every transport collapses into CommClosedError."""

import itertools
import threading
import time

import pytest

from repro import comm
from repro.comm.pipe import pipe_pair

_ids = itertools.count()


def _echo_handler(c):
    """Server loop: echo every message until the peer goes away."""
    while True:
        try:
            msg = c.recv()
        except comm.CommClosedError:
            return
        c.send(("echo", msg))


@pytest.fixture
def inproc_echo():
    lis = comm.listen(f"inproc://echo-{next(_ids)}", _echo_handler)
    yield lis
    lis.close()


@pytest.fixture
def tcp_echo():
    lis = comm.listen("tcp://127.0.0.1:0", _echo_handler)
    yield lis
    lis.close()


class TestAddressing:
    def test_parse_address(self):
        addr = comm.parse_address("tcp://10.0.0.1:7070")
        assert addr.scheme == "tcp" and addr.location == "10.0.0.1:7070"
        assert str(addr) == "tcp://10.0.0.1:7070"

    def test_malformed_address_rejected(self):
        with pytest.raises(ValueError):
            comm.parse_address("no-scheme-here")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown comm scheme"):
            comm.connect("carrier-pigeon://roof")

    def test_pipe_scheme_has_no_address_space(self):
        with pytest.raises(ValueError, match="pipe_pair"):
            comm.connect("pipe://anywhere")

    def test_tcp_listener_reports_bound_port(self, tcp_echo):
        assert tcp_echo.address.startswith("tcp://127.0.0.1:")
        assert not tcp_echo.address.endswith(":0")


class TestRoundTrips:
    def test_inproc_round_trip(self, inproc_echo):
        with comm.connect(inproc_echo.address) as c:
            c.send({"x": [1, 2, 3]})
            assert c.recv(timeout=5) == ("echo", {"x": [1, 2, 3]})

    def test_tcp_round_trip(self, tcp_echo):
        with comm.connect(tcp_echo.address) as c:
            c.send(("job", (0, 1), [("b", 0)], False))
            assert c.recv(timeout=5) == ("echo", ("job", (0, 1), [("b", 0)], False))

    def test_pipe_round_trip(self):
        a, b = pipe_pair()
        a.send([1, b"bytes", None])
        assert b.recv(timeout=5) == [1, b"bytes", None]
        b.send("back")
        assert a.recv(timeout=5) == "back"
        a.close()
        b.close()

    def test_tcp_ordering_many_messages(self, tcp_echo):
        with comm.connect(tcp_echo.address) as c:
            for i in range(200):
                c.send(i)
            got = [c.recv(timeout=5)[1] for _ in range(200)]
        assert got == list(range(200))

    def test_recv_timeout_leaves_channel_usable(self, tcp_echo):
        with comm.connect(tcp_echo.address) as c:
            with pytest.raises(TimeoutError):
                c.recv(timeout=0.05)
            c.send("after-timeout")
            assert c.recv(timeout=5) == ("echo", "after-timeout")

    def test_poll_reflects_pending_data(self, inproc_echo):
        with comm.connect(inproc_echo.address) as c:
            assert not c.poll(0.01)
            c.send(1)
            assert c.poll(5.0)
            assert c.recv(timeout=5) == ("echo", 1)


class TestPeerLoss:
    def test_inproc_connect_to_nobody(self):
        with pytest.raises(comm.CommClosedError):
            comm.connect("inproc://nobody-home")

    def test_tcp_connect_refused(self):
        # A bound-then-closed listener guarantees a dead port.  The
        # kernel can very rarely self-connect (ephemeral source port ==
        # destination port), so discard such accidents and retry.
        for _ in range(5):
            lis = comm.listen("tcp://127.0.0.1:0", _echo_handler)
            addr = lis.address
            lis.close()
            time.sleep(0.05)
            try:
                c = comm.connect(addr)
            except comm.CommClosedError:
                return  # the expected outcome
            c.close()
        pytest.fail("connect to a closed port kept succeeding")

    def test_tcp_peer_close_surfaces_on_recv(self):
        def close_handler(c):
            c.recv()
            c.close()

        lis = comm.listen("tcp://127.0.0.1:0", close_handler)
        try:
            c = comm.connect(lis.address)
            c.send("bye")
            with pytest.raises(comm.CommClosedError):
                c.recv(timeout=5)
            assert c.closed
        finally:
            lis.close()

    def test_inproc_sever_is_impolite_loss(self):
        server_side = []

        def handler(c):
            server_side.append(c)

        lis = comm.listen(f"inproc://sever-{next(_ids)}", handler)
        try:
            c = comm.connect(lis.address)
            for _ in range(100):
                if server_side:
                    break
                time.sleep(0.01)
            server_side[0].sever()
            with pytest.raises(comm.CommClosedError):
                c.recv(timeout=5)
        finally:
            lis.close()

    def test_pipe_send_after_peer_close(self):
        a, b = pipe_pair()
        b.close()
        with pytest.raises(comm.CommClosedError):
            # The OS may buffer the first send; the pair must fail
            # within a bounded number of attempts, never silently.
            for _ in range(10):
                a.send("into the void")
                time.sleep(0.01)
        a.close()

    def test_send_on_locally_closed_comm(self, tcp_echo):
        c = comm.connect(tcp_echo.address)
        c.close()
        with pytest.raises(comm.CommClosedError):
            c.send("late")


class TestRetryAndHeartbeat:
    def test_connect_with_retry_waits_for_listener(self):
        name = f"inproc://late-{next(_ids)}"
        holder = {}

        def bind_late():
            time.sleep(0.15)
            holder["lis"] = comm.listen(name, _echo_handler)

        t = threading.Thread(target=bind_late)
        t.start()
        try:
            c = comm.connect_with_retry(name, attempts=10, base_delay=0.05)
            c.send("made it")
            assert c.recv(timeout=5) == ("echo", "made it")
            c.close()
        finally:
            t.join()
            holder["lis"].close()

    def test_connect_with_retry_exhausts_attempts(self):
        t0 = time.perf_counter()
        with pytest.raises(comm.CommClosedError, match="after 3 attempts"):
            comm.connect_with_retry("inproc://never", attempts=3, base_delay=0.01)
        assert time.perf_counter() - t0 < 5.0

    def test_heartbeats_keep_idle_clock_fresh_and_stay_invisible(self):
        def beating_handler(c):
            c.start_heartbeat(interval=0.05)
            try:
                while True:
                    c.send(("echo", c.recv()))
            except comm.CommClosedError:
                return

        lis = comm.listen("tcp://127.0.0.1:0", beating_handler)
        try:
            with comm.connect(lis.address) as c:
                c.send("prime")
                assert c.recv(timeout=5) == ("echo", "prime")
                # No data flows for several beat intervals.  Poll the way
                # the runtime's await loop does (pumping timestamps the
                # inbound heartbeats): the idle clock stays fresh while
                # recv-level traffic sees nothing -- heartbeats are
                # swallowed below the message layer.
                deadline = time.monotonic() + 0.5
                while time.monotonic() < deadline:
                    assert not c.poll(0.05)
                assert c.idle_seconds() < 0.4
                c.send("still-works")
                assert c.recv(timeout=5) == ("echo", "still-works")
        finally:
            lis.close()

    def test_idle_clock_grows_without_heartbeats(self, tcp_echo):
        with comm.connect(tcp_echo.address) as c:
            c.send("prime")
            assert c.recv(timeout=5) == ("echo", "prime")
            time.sleep(0.3)
            assert c.idle_seconds() >= 0.25
