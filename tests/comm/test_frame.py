"""Frame codec: framing round trips, batching, and both error rails."""

import pytest

from repro.comm import frame


class TestPayloadLayer:
    def test_dumps_loads_round_trip(self):
        for msg in (None, 42, "x", b"\x00\xff", ("job", (1, 2), [("a", 0)], False),
                    {"nested": [1, (2, 3)]}):
            assert frame.loads(frame.dumps(msg)) == msg

    def test_dumps_enforces_ceiling(self):
        with pytest.raises(frame.OversizedFrameError) as ei:
            frame.dumps(b"x" * 1024, max_bytes=64)
        assert ei.value.limit == 64
        assert ei.value.nbytes > 64


class TestFraming:
    def test_single_frame_round_trip(self):
        d = frame.FrameDecoder()
        assert d.feed(frame.pack_frame(b"hello")) == 1
        assert d.next_frame() == b"hello"
        assert d.next_frame() is None
        d.close()

    def test_byte_at_a_time_reassembly(self):
        buf = frame.pack_frame(b"abc") + frame.pack_frame(b"") + frame.pack_frame(b"xyz")
        d = frame.FrameDecoder()
        for i in range(len(buf)):
            d.feed(buf[i:i + 1])
        assert list(d.frames()) == [b"abc", b"", b"xyz"]
        d.close()

    def test_pack_frames_batches_identically(self):
        payloads = [frame.dumps(i) for i in range(10)]
        batched = frame.pack_frames(payloads)
        assert batched == b"".join(frame.pack_frame(p) for p in payloads)
        d = frame.FrameDecoder()
        d.feed(batched)
        assert [frame.loads(p) for p in d.frames()] == list(range(10))

    def test_pending_counts_ready_frames(self):
        d = frame.FrameDecoder()
        d.feed(frame.pack_frames([b"a", b"b", b"c"]))
        assert d.pending == 3
        d.next_frame()
        assert d.pending == 2

    def test_encode_message_is_full_stream_encoding(self):
        d = frame.FrameDecoder()
        d.feed(frame.encode_message({"k": 1}))
        assert frame.loads(d.next_frame()) == {"k": 1}


class TestErrorRails:
    def test_truncated_mid_payload(self):
        d = frame.FrameDecoder()
        d.feed(frame.pack_frame(b"hello")[:-2])
        with pytest.raises(frame.TruncatedFrameError) as ei:
            d.close()
        assert ei.value.have == 3 and ei.value.want == 5

    def test_truncated_mid_header(self):
        d = frame.FrameDecoder()
        d.feed(b"\x05\x00\x00")  # 3 of 8 header bytes
        with pytest.raises(frame.TruncatedFrameError):
            d.close()

    def test_clean_close_after_complete_frames(self):
        d = frame.FrameDecoder()
        d.feed(frame.pack_frame(b"done"))
        d.close()  # no residue -> no error

    def test_oversized_header_rejected_before_buffering(self):
        # A corrupt length header must be refused from the 8 header
        # bytes alone -- the decoder never waits for (or allocates) the
        # claimed payload.
        d = frame.FrameDecoder(max_bytes=100)
        with pytest.raises(frame.OversizedFrameError) as ei:
            d.feed((101).to_bytes(8, "little"))
        assert ei.value.nbytes == 101 and ei.value.limit == 100

    def test_frames_under_the_ceiling_pass(self):
        d = frame.FrameDecoder(max_bytes=100)
        d.feed(frame.pack_frame(b"x" * 100))
        assert d.next_frame() == b"x" * 100

    def test_frame_errors_are_repro_errors(self):
        from repro.exceptions import ReproError

        assert issubclass(frame.FrameError, ReproError)
        assert issubclass(frame.OversizedFrameError, frame.FrameError)
        assert issubclass(frame.TruncatedFrameError, frame.FrameError)
