"""Zero-copy data plane: the OOB codec, multi-segment framing, pooled
buffer lifetime (use-after-recycle is structurally impossible), the
backend ``send_oob`` matrix, and large-frame liveness."""

import itertools
import socket
import threading
import time

import numpy as np
import pytest

from repro import comm
from repro.comm import frame
from repro.comm.pipe import pipe_pair

_ids = itertools.count()


def _array(kib: int) -> np.ndarray:
    n = kib * 1024 // 8
    return np.arange(n, dtype=np.float64)


class TestOOBCodec:
    def test_large_array_rides_out_of_band(self):
        arr = _array(1024)  # 1 MiB
        meta, bufs = frame.dumps_oob(("data", arr))
        assert len(bufs) == 1
        # The pickle stream carries only shape/dtype metadata.
        assert len(meta) < 4096
        decoded = frame.loads_oob(meta, bufs)
        tag, out = decoded
        assert tag == "data"
        np.testing.assert_array_equal(out, arr)
        # Decode-side zero copy: the array is a view over the buffer the
        # pickler extracted, which is the sender's own memory.
        assert not out.flags.owndata
        assert np.shares_memory(out, arr)

    def test_small_payloads_stay_in_band(self):
        meta, bufs = frame.dumps_oob(("job", 7, b"tiny"))
        assert bufs == []
        assert frame.loads(meta) == ("job", 7, b"tiny")

    def test_plain_message_without_callback_still_decodes(self):
        # A peer that pickled without the OOB callback interoperates:
        # protocol 5 simply keeps buffers in-band.
        arr = _array(64)
        payload = frame.dumps(("data", arr))
        _, out = frame.loads(payload)
        np.testing.assert_array_equal(out, arr)

    def test_oob_ceiling_enforced(self):
        with pytest.raises(frame.OversizedFrameError) as ei:
            frame.dumps_oob(_array(64), max_bytes=1024)
        assert ei.value.limit == 1024

    def test_encoded_reships_buffers_out_of_band(self):
        # The send-side cache stores Encoded values; pickling one through
        # an outer dumps_oob must re-extract its segments, not copy them
        # into the outer meta stream.
        arr = _array(256)
        enc = frame.encode_oob(arr)
        assert enc.nbytes >= arr.nbytes
        meta, bufs = frame.dumps_oob(("data", "b", 3, enc))
        assert len(meta) < 4096
        assert len(bufs) == 1
        _, _, _, enc2 = frame.loads_oob(meta, bufs)
        np.testing.assert_array_equal(enc2.load(), arr)


class TestMultiSegmentFraming:
    def test_byte_at_a_time_multisegment_reassembly(self):
        a, b = _array(8), _array(16)
        parts = frame.encode_message_oob(("data", a, b))
        assert len(parts) > 1  # header+table, meta, two segments
        wire = b"".join(bytes(p) for p in parts)
        d = frame.FrameDecoder()
        for i in range(len(wire)):
            d.feed(wire[i : i + 1])
        oob = d.next_frame()
        assert isinstance(oob, frame.OOBFrame)
        tag, out_a, out_b = oob.load()
        assert tag == "data"
        np.testing.assert_array_equal(out_a, a)
        np.testing.assert_array_equal(out_b, b)
        d.close()  # no residue

    def test_plain_and_oob_frames_interleave(self):
        arr = _array(8)
        wire = (
            frame.pack_frame(frame.dumps("before"))
            + b"".join(bytes(p) for p in frame.encode_message_oob(("data", arr)))
            + frame.pack_frame(frame.dumps("after"))
        )
        d = frame.FrameDecoder()
        d.feed(wire)
        got = list(d.frames())
        assert frame.loads(got[0]) == "before"
        np.testing.assert_array_equal(got[1].load()[1], arr)
        assert frame.loads(got[2]) == "after"

    def test_runaway_segment_count_rejected_from_header(self):
        d = frame.FrameDecoder()
        header = frame._HEADER.pack(frame.OOB_FLAG | (frame.MAX_OOB_SEGMENTS + 1))
        with pytest.raises(frame.OversizedFrameError):
            d.feed(header)

    def test_oob_total_over_ceiling_rejected_from_table(self):
        d = frame.FrameDecoder(max_bytes=1024)
        header = frame._HEADER.pack(frame.OOB_FLAG | 2)
        table = frame._HEADER.pack(100) + frame._HEADER.pack(2048)
        with pytest.raises(frame.OversizedFrameError) as ei:
            d.feed(header + table)
        assert ei.value.nbytes == 2148

    def test_truncated_mid_segment(self):
        wire = b"".join(
            bytes(p) for p in frame.encode_message_oob(("data", _array(8)))
        )
        d = frame.FrameDecoder()
        d.feed(wire[:-100])
        with pytest.raises(frame.TruncatedFrameError):
            d.close()


class TestBufferLifetime:
    def test_pool_reuses_returned_buffer(self):
        pool = frame.BufferPool()
        buf = pool.lease(100)
        assert pool.give_back(buf)
        assert pool.lease(50) is buf

    def test_pool_refuses_aliased_buffer(self):
        pool = frame.BufferPool()
        buf = pool.lease(100)
        mv = memoryview(buf)
        assert frame.BufferPool.exports_live(buf)
        assert not pool.give_back(buf)
        assert pool.lease(100) is not buf  # never handed out while aliased
        mv.release()
        assert pool.give_back(buf)

    def _decode_one(self, decoder: frame.FrameDecoder, message) -> frame.OOBFrame:
        wire = b"".join(bytes(p) for p in frame.encode_message_oob(message))
        decoder.feed(wire)
        return decoder.next_frame()

    def test_use_after_recycle_regression(self):
        # The regression this pins: a consumer holds an array view over a
        # transport buffer; the pool must NOT recycle that buffer under
        # the next inbound frame, or the array's contents would change
        # underneath it.
        d = frame.FrameDecoder()
        first = self._decode_one(d, ("data", _array(32)))
        arr = first.load()[1]
        snapshot = arr.copy()
        assert not first.try_recycle()  # arr still aliases the buffer
        second = self._decode_one(d, ("data", _array(32) * -1.0))
        other = second.load()[1]
        np.testing.assert_array_equal(arr, snapshot)  # untouched
        np.testing.assert_array_equal(other, _array(32) * -1.0)
        # Dropping the consumer makes the buffer recyclable, and only
        # then does the pool hand it out again.
        del arr, other
        assert first.try_recycle()
        assert first.try_recycle()  # idempotent

    def test_take_copies_out_and_frees_transport_buffer(self):
        d = frame.FrameDecoder()
        oob = self._decode_one(d, ("data", _array(32)))
        oob.take()
        assert oob.try_recycle()  # already detached
        # The pooled buffer is free again while the taken views live on.
        np.testing.assert_array_equal(oob.load()[1], _array(32))


class TestBackendSendOOB:
    def test_inproc_send_oob_is_zero_copy(self):
        got = []

        def handler(c):
            try:
                got.append(c.recv())
            except comm.CommClosedError:
                return

        lis = comm.listen(f"inproc://oob-{next(_ids)}", handler)
        try:
            arr = _array(256)
            with comm.connect(lis.address) as c:
                c.send_oob(("data", arr))
                for _ in range(200):
                    if got:
                        break
                    time.sleep(0.01)
            tag, out = got[0]
            np.testing.assert_array_equal(out, arr)
            # In-process, OOB segments alias the sender's memory.
            assert np.shares_memory(out, arr)
        finally:
            lis.close()

    def test_pipe_send_oob_round_trip(self):
        a, b = pipe_pair()
        got = []
        t = threading.Thread(target=lambda: got.append(b.recv(timeout=10)))
        t.start()
        arr = _array(256)
        a.send_oob(("data", arr))
        t.join(timeout=10)
        tag, out = got[0]
        assert tag == "data"
        np.testing.assert_array_equal(out, arr)
        a.close()
        b.close()

    def test_tcp_send_oob_round_trip(self):
        def oob_echo(c):
            try:
                while True:
                    c.send_oob(("echo", c.recv()))
            except comm.CommClosedError:
                return

        lis = comm.listen("tcp://127.0.0.1:0", oob_echo)
        try:
            arr = _array(1024)
            with comm.connect(lis.address) as c:
                c.send_oob(("data", arr))
                tag, (tag2, out) = c.recv(timeout=10)
                assert (tag, tag2) == ("echo", "data")
                np.testing.assert_array_equal(out, arr)
        finally:
            lis.close()

    @pytest.mark.parametrize("scheme", ["inproc", "tcp"])
    def test_send_oob_plain_message_fallback(self, scheme):
        def echo(c):
            try:
                while True:
                    c.send_oob(("echo", c.recv()))
            except comm.CommClosedError:
                return

        addr = (
            f"inproc://oob-plain-{next(_ids)}"
            if scheme == "inproc"
            else "tcp://127.0.0.1:0"
        )
        lis = comm.listen(addr, echo)
        try:
            with comm.connect(lis.address) as c:
                c.send_oob({"plain": [1, 2, 3]})
                assert c.recv(timeout=10) == ("echo", {"plain": [1, 2, 3]})
        finally:
            lis.close()

    def test_pipe_send_oob_plain_message_fallback(self):
        a, b = pipe_pair()
        a.send_oob({"plain": (1, 2)})
        assert b.recv(timeout=5) == {"plain": (1, 2)}
        a.close()
        b.close()


class TestLargeFrameLiveness:
    def test_dribbled_large_frame_keeps_peer_alive(self):
        # The liveness regression: a multi-MiB frame arriving slowly must
        # refresh the idle clock with every chunk -- a parent must never
        # declare a worker dead mid-transfer just because no *complete*
        # message landed recently.
        server = []

        def handler(c):
            server.append(c)
            try:
                c.recv()
            except comm.CommClosedError:
                return

        lis = comm.listen("tcp://127.0.0.1:0", handler)
        try:
            host, port = lis.address[len("tcp://") :].rsplit(":", 1)
            raw = socket.create_connection((host, int(port)))
            for _ in range(200):
                if server:
                    break
                time.sleep(0.01)
            wire = frame.pack_frame(frame.dumps(b"x" * (512 * 1024)))
            step = len(wire) // 16 + 1
            worst = 0.0
            for off in range(0, len(wire), step):
                raw.sendall(wire[off : off + step])
                time.sleep(0.05)
                worst = max(worst, server[0].idle_seconds())
            # ~0.8s of dribbling, yet the clock never aged past a few
            # chunk intervals.
            assert worst < 0.5
            raw.close()
        finally:
            lis.close()

    def test_heartbeat_refuses_to_wait_for_send_lock(self):
        # The send-side half of the satellite: a heartbeat must not queue
        # behind a large transfer holding the send lock -- it skips the
        # beat (the in-flight bytes refresh the peer anyway).
        lis = comm.listen("tcp://127.0.0.1:0", lambda c: None)
        try:
            c = comm.connect(lis.address)
            try:
                assert c._try_send("probe") is True
                with c._send_lock:
                    t0 = time.perf_counter()
                    assert c._try_send("probe") is False
                    assert time.perf_counter() - t0 < 0.1
                assert c._try_send("probe") is True
            finally:
                c.close()
        finally:
            lis.close()
