"""Wire-safety regression tests (alongside the pickle round-trip tests):
every object the cluster protocol ships -- fault exceptions, shared-memory
descriptors, block references -- must survive the full frame codec path
(dumps -> pack_frame -> FrameDecoder -> loads) with identity intact, and
the codec's error rails must fire on damaged streams carrying them."""

import numpy as np
import pytest

from repro.comm import frame
from repro.exceptions import (
    DataCorruptionError,
    FaultError,
    OverwrittenError,
    ReproError,
    TaskCorruptionError,
    WorkerCrashError,
)
from repro.graph.taskspec import BlockRef
from repro.memory.shm import ArraySpec, ShmDescriptor, _ArraySlot


def wire_round_trip(obj):
    """Push ``obj`` through the complete wire path one byte at a time."""
    stream = frame.encode_message(obj)
    d = frame.FrameDecoder()
    for i in range(len(stream)):
        d.feed(stream[i:i + 1])
    payload = d.next_frame()
    d.close()
    return frame.loads(payload)


class TestExceptionWireSafety:
    def test_worker_crash_error(self):
        exc = wire_round_trip(WorkerCrashError((3, 1), pid=4242, exitcode=73))
        assert isinstance(exc, WorkerCrashError)
        assert exc.key == (3, 1)
        assert exc.pid == 4242
        assert exc.exitcode == 73
        assert "(3, 1)" in str(exc)

    def test_worker_crash_error_defaults(self):
        exc = wire_round_trip(WorkerCrashError("k"))
        assert exc.key == "k" and exc.pid is None and exc.exitcode is None

    def test_task_corruption_error(self):
        exc = wire_round_trip(TaskCorruptionError((0, 7), life=2))
        assert isinstance(exc, TaskCorruptionError)
        assert exc.key == (0, 7) and exc.life == 2

    def test_data_corruption_error(self):
        exc = wire_round_trip(DataCorruptionError(("tile", 1, 1), 3, producer=(1, 1)))
        assert isinstance(exc, DataCorruptionError)
        assert exc.block == ("tile", 1, 1)
        assert exc.version == 3
        assert exc.producer == (1, 1)

    def test_overwritten_error(self):
        exc = wire_round_trip(OverwrittenError("b", 2, resident=5, producer="p"))
        assert isinstance(exc, OverwrittenError)
        assert (exc.block, exc.version, exc.resident, exc.producer) == ("b", 2, 5, "p")

    def test_fault_hierarchy_survives_the_wire(self):
        # Catch sites in the FT scheduler key on the class hierarchy; a
        # round trip must not flatten it.
        for exc in (
            WorkerCrashError("k"),
            TaskCorruptionError("k", 0),
            DataCorruptionError("b", 1),
            OverwrittenError("b", 1, None),
        ):
            got = wire_round_trip(exc)
            assert isinstance(got, FaultError)
            assert isinstance(got, ReproError)

    def test_exception_inside_protocol_message(self):
        # The shape the cluster protocol actually ships: ("raise", exc).
        tag, exc = wire_round_trip(("raise", WorkerCrashError((9, 9))))
        assert tag == "raise"
        assert isinstance(exc, WorkerCrashError) and exc.key == (9, 9)


class TestDescriptorWireSafety:
    def test_block_ref(self):
        ref = wire_round_trip(BlockRef(("tile", 2, 3), 4))
        assert isinstance(ref, BlockRef)
        assert ref.block == ("tile", 2, 3) and ref.version == 4

    def test_shm_descriptor(self):
        desc = ShmDescriptor(
            name="psm_abc123",
            template={"lhs": _ArraySlot(0), "rhs": [_ArraySlot(1), None]},
            arrays=(
                ArraySpec(dtype="float64", shape=(8, 8), offset=0),
                ArraySpec(dtype="int32", shape=(16,), offset=512),
            ),
        )
        got = wire_round_trip(desc)
        assert isinstance(got, ShmDescriptor)
        assert got == desc
        assert isinstance(got.arrays[0], ArraySpec)
        assert got.template["lhs"] == _ArraySlot(0)

    def test_fetch_reply_with_array_payload(self):
        # The cluster's ("data", block, version, payload) shape, with the
        # payload itself frame-encoded as the runtime does.
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        msg = ("data", ("tile", 0, 0), 1, frame.dumps(arr))
        tag, block, version, payload = wire_round_trip(msg)
        assert (tag, block, version) == ("data", ("tile", 0, 0), 1)
        np.testing.assert_array_equal(frame.loads(payload), arr)

    def test_job_message_with_refs(self):
        refs = [BlockRef("a", 0), BlockRef("b", 2)]
        msg = ("job", (1, 1), refs, False, 0, "tok")
        got = wire_round_trip(msg)
        assert got == msg
        assert all(isinstance(r, BlockRef) for r in got[2])


class TestDamagedStreams:
    def test_truncated_exception_frame(self):
        stream = frame.encode_message(WorkerCrashError("k", pid=1))
        d = frame.FrameDecoder()
        d.feed(stream[:-1])
        assert d.next_frame() is None
        with pytest.raises(frame.TruncatedFrameError):
            d.close()

    def test_truncated_descriptor_frame_mid_header(self):
        stream = frame.encode_message(ShmDescriptor("n", None, ()))
        d = frame.FrameDecoder()
        d.feed(stream[:4])
        with pytest.raises(frame.TruncatedFrameError):
            d.close()

    def test_oversized_descriptor_payload_refused_at_sender(self):
        big = ShmDescriptor("n", "x" * 4096, ())
        with pytest.raises(frame.OversizedFrameError):
            frame.dumps(big, max_bytes=128)

    def test_oversized_frame_refused_at_receiver(self):
        stream = frame.encode_message(WorkerCrashError("k"))
        d = frame.FrameDecoder(max_bytes=8)
        with pytest.raises(frame.OversizedFrameError):
            d.feed(stream)

    def test_good_frame_then_truncated_frame(self):
        # A valid message decodes even when the stream dies mid-next-frame.
        good = frame.encode_message(BlockRef("a", 1))
        bad = frame.encode_message(BlockRef("b", 2))[:-3]
        d = frame.FrameDecoder()
        d.feed(good + bad)
        assert frame.loads(d.next_frame()) == BlockRef("a", 1)
        with pytest.raises(frame.TruncatedFrameError):
            d.close()
