"""Shared fixtures: tiny applications, runtimes, and execution helpers."""

from __future__ import annotations

import pytest

from repro.apps import APP_NAMES, make_app
from repro.core import FTScheduler, NabbitScheduler
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


@pytest.fixture(params=APP_NAMES)
def tiny_app(request):
    """Each benchmark at tiny scale (full kernels)."""
    return make_app(request.param, scale="tiny")


def run_ft(app, workers=1, seed=0, plan=None, store=None, trace=None, cost_model=None):
    """Run the FT scheduler on the simulated runtime; returns (result, store)."""
    from repro.faults.injector import FaultInjector

    store = store if store is not None else app.make_store(True)
    trace = trace or ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan is not None else None
    runtime = SimulatedRuntime(workers=workers, seed=seed, cost_model=cost_model)
    sched = FTScheduler(app, runtime, store=store, hooks=hooks, trace=trace, cost_model=cost_model)
    return sched.run(), store


def run_baseline(app, workers=1, seed=0, store=None):
    store = store if store is not None else app.make_store(False)
    sched = NabbitScheduler(app, SimulatedRuntime(workers=workers, seed=seed), store=store)
    return sched.run(), store
