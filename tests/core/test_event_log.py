"""Tests for the FT scheduler's recovery-event log."""

from repro.core import FTScheduler
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultPlan
from repro.graph.builders import chain_graph, diamond_graph
from repro.memory.blockstore import BlockStore
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_recorded(spec, plan, runtime=None):
    store = BlockStore()
    trace = ExecutionTrace()
    injector = FaultInjector(plan, spec, store, trace) if plan else None
    sched = FTScheduler(
        spec, runtime or InlineRuntime(), store=store, hooks=injector,
        trace=trace, record_events=True,
    )
    sched.run()
    return sched


class TestEventLog:
    def test_fault_free_run_has_no_events(self):
        sched = run_recorded(chain_graph(5), None)
        assert sched.events == []

    def test_off_by_default(self):
        spec = chain_graph(5)
        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(FaultPlan.single(2, "after_compute"), spec, store, trace)
        sched = FTScheduler(spec, InlineRuntime(), store=store, hooks=injector, trace=trace)
        sched.run()
        assert sched.events == []

    def test_after_notify_narrative(self):
        # The canonical sequence: consumer's compute faults -> consumer
        # resets -> producer recovered -> consumer re-enqueued.
        sched = run_recorded(chain_graph(5), FaultPlan.single(2, "after_notify"))
        kinds = [e[0] for e in sched.events]
        assert kinds.index("compute_fault") < kinds.index("reset")
        assert "recovery" in kinds
        assert ("reinit", 2, 3) in sched.events

    def test_compute_fault_names_source(self):
        sched = run_recorded(chain_graph(5), FaultPlan.single(2, "after_notify"))
        fault = next(e for e in sched.events if e[0] == "compute_fault")
        # (kind, key, life, exc_type, source)
        assert fault[1] == 3          # the consumer observed it
        assert fault[4] == 2          # ... and attributed it to the producer

    def test_duplicate_suppression_logged(self):
        spec = diamond_graph(width=8)
        sched = run_recorded(
            spec, FaultPlan.single("src", "after_compute"),
            runtime=SimulatedRuntime(workers=8, seed=1),
        )
        kinds = [e[0] for e in sched.events]
        assert kinds.count("recovery") == 1

    def test_counts_match_trace(self):
        sched = run_recorded(chain_graph(6), FaultPlan.single(3, "before_compute"))
        kinds = [e[0] for e in sched.events]
        assert kinds.count("recovery") == sched.trace.total_recoveries
        assert kinds.count("reset") == sched.trace.resets
        assert kinds.count("stale_frame") == sched.trace.stale_frames
