"""Descriptor-only and data-only fault variants.

The paper's injections corrupt both the task descriptor and its data
blocks; the model also admits each alone (e.g. ECC catching a corrupted
cache line holding only the descriptor, or only the data).  Recovery
must route correctly either way.
"""

import pytest

from repro.core import FTScheduler, run_scheduler
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.builders import chain_graph, grid_graph
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_events(spec, events, workers=1, seed=0):
    plan = FaultPlan(events=list(events), implied_reexecutions=len(events))
    store = BlockStore()
    trace = ExecutionTrace()
    injector = FaultInjector(plan, spec, store, trace)
    sched = FTScheduler(
        spec, SimulatedRuntime(workers=workers, seed=seed),
        store=store, hooks=injector, trace=trace,
    )
    return sched.run(), store, injector


class TestDescriptorOnly:
    def test_after_compute_descriptor_only(self):
        # Data survives; only the descriptor is corrupt.  The computing
        # thread still observes it at publication and recovers.
        spec = chain_graph(5)
        expected = run_scheduler(spec).store.peek(BlockRef(4, 0))
        events = [FaultEvent(2, FaultPhase.AFTER_COMPUTE, corrupt_outputs=False)]
        res, store, _ = run_events(spec, events)
        assert res.trace.recoveries[2] == 1
        assert store.peek(BlockRef(4, 0)) == expected

    def test_after_notify_descriptor_only_unobserved_data_ok(self):
        # The descriptor is corrupt but the data is fine: consumers read
        # valid data, nobody needs the descriptor again -> no recovery
        # (the paper's "not recovered" case).
        spec = chain_graph(5)
        expected = run_scheduler(spec).store.peek(BlockRef(4, 0))
        events = [FaultEvent(2, FaultPhase.AFTER_NOTIFY, corrupt_outputs=False)]
        res, store, injector = run_events(spec, events)
        assert injector.all_fired()
        assert res.trace.total_recoveries == 0
        assert store.peek(BlockRef(4, 0)) == expected


class TestDataOnly:
    def test_after_notify_data_only(self):
        # Descriptor fine, data corrupt: the consumer's compute detects,
        # resets, and the producer is recovered through the traversal's
        # output-availability check.
        spec = chain_graph(5)
        expected = run_scheduler(spec).store.peek(BlockRef(4, 0))
        events = [FaultEvent(2, FaultPhase.AFTER_NOTIFY, corrupt_descriptor=False)]
        res, store, _ = run_events(spec, events)
        assert res.trace.recoveries[2] == 1
        assert res.trace.resets >= 1
        assert store.peek(BlockRef(4, 0)) == expected

    def test_data_only_on_grid_parallel(self):
        spec = grid_graph(5, 5)
        expected = run_scheduler(spec).store.peek(BlockRef((4, 4), 0))
        events = [
            FaultEvent((2, 2), FaultPhase.AFTER_NOTIFY, corrupt_descriptor=False),
            FaultEvent((1, 3), FaultPhase.AFTER_NOTIFY, corrupt_descriptor=False),
        ]
        res, store, _ = run_events(spec, events, workers=4, seed=5)
        assert store.peek(BlockRef((4, 4), 0)) == expected


class TestMixedPlans:
    def test_mixed_variants_in_one_run(self):
        spec = grid_graph(5, 5)
        expected = run_scheduler(spec).store.peek(BlockRef((4, 4), 0))
        events = [
            FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE),
            FaultEvent((2, 3), FaultPhase.AFTER_NOTIFY, corrupt_descriptor=False),
            FaultEvent((3, 1), FaultPhase.BEFORE_COMPUTE, corrupt_outputs=False),
        ]
        res, store, injector = run_events(spec, events, workers=3, seed=1)
        assert injector.all_fired()
        assert store.peek(BlockRef((4, 4), 0)) == expected
