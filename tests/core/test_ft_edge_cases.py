"""Edge-case tests for the FT scheduler beyond the guarantee suite."""

import pytest

from repro.core import FTScheduler, TaskStatus, run_scheduler
from repro.exceptions import SchedulerError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.builders import chain_graph, diamond_graph, grid_graph
from repro.graph.explicit import ExplicitTaskGraph
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import Reuse
from repro.memory.blockstore import BlockStore
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_with_plan(spec, plan, store=None, workers=1, seed=0):
    store = store if store is not None else BlockStore()
    trace = ExecutionTrace()
    injector = FaultInjector(plan, spec, store, trace)
    sched = FTScheduler(
        spec, SimulatedRuntime(workers=workers, seed=seed),
        store=store, hooks=injector, trace=trace,
    )
    return sched.run(), injector, sched


class TestSingleTaskGraph:
    def test_trivial_graph(self):
        spec = chain_graph(1)
        res = run_scheduler(spec)
        assert res.trace.total_computes == 1

    def test_trivial_graph_with_fault(self):
        spec = chain_graph(1)
        plan = FaultPlan.single(0, "before_compute")
        res, injector, _ = run_with_plan(spec, plan)
        assert injector.all_fired()
        assert res.trace.total_computes == 1


class TestEveryTaskFails:
    @pytest.mark.parametrize("phase", ["before_compute", "after_compute"])
    def test_all_nonsink_tasks_fail(self, phase):
        spec = grid_graph(4, 4)
        expected = run_scheduler(spec).store.peek(BlockRef((3, 3), 0))
        victims = [(i, j) for i in range(4) for j in range(4) if (i, j) != (3, 3)]
        if phase == "before_compute":
            victims = [v for v in victims if v != (0, 0)]  # source never waits
        events = [
            FaultEvent(v, FaultPhase.from_name(phase),
                       corrupt_outputs=phase == "after_compute")
            for v in victims
        ]
        plan = FaultPlan(events=events, implied_reexecutions=len(events))
        res, injector, _ = run_with_plan(spec, plan, workers=4)
        assert injector.all_fired()
        assert res.store.peek(BlockRef((3, 3), 0)) == expected

    def test_chain_every_task_fails_after_compute(self):
        spec = chain_graph(8)
        events = [FaultEvent(i, FaultPhase.AFTER_COMPUTE) for i in range(8)]
        plan = FaultPlan(events=events, implied_reexecutions=8)
        res, injector, _ = run_with_plan(spec, plan)
        assert injector.all_fired()
        assert res.trace.reexecutions == 8


class TestStaleFrameGate:
    def test_stale_frames_detected_after_recovery(self):
        # A before-compute fault replaces the victim while its original
        # traversal frames are still queued; the life-number gate must
        # drop them instead of letting them misread predecessor state.
        spec = chain_graph(6)
        plan = FaultPlan.single(3, "before_compute")
        res, _, _ = run_with_plan(spec, plan)
        assert res.trace.stale_frames >= 1
        assert res.trace.reexecutions == 0

    def test_reuse_store_no_spurious_cascade(self):
        # With single-buffer reuse, a stale traversal re-checking consumed
        # inputs used to cascade; the gate prevents it (the bug found
        # during Figure 5 bring-up).
        spec = chain_graph(10)
        store = BlockStore(Reuse())
        plan = FaultPlan.single(7, "before_compute")
        res, _, _ = run_with_plan(spec, plan, store=store)
        assert res.trace.reexecutions == 0
        assert res.trace.total_recoveries == 1


class TestOverwrittenInputRecovery:
    def test_chain_replay_through_reused_buffers(self):
        """Single logical block rewritten by every task in a chain: a
        late fault forces replay from the pinned input forward."""

        def compute(key, ctx):
            prev = ctx.read(BlockRef("buf", key)) if key > 0 else 0
            ctx.write(BlockRef("buf", key + 1), prev + key + 1)

        n = 6
        spec = ExplicitTaskGraph([(i, i + 1) for i in range(n - 1)], compute=compute)
        # Override the default single-assignment footprint.
        spec.inputs = lambda k: (BlockRef("buf", k),) if k > 0 else ()
        spec.outputs = lambda k: (BlockRef("buf", k + 1),)
        spec.producer = lambda ref: None if ref.version == 0 else ref.version - 1

        store = BlockStore(Reuse())
        plan = FaultPlan.single(n - 2, "after_compute")
        res, injector, _ = run_with_plan(spec, plan, store=store)
        assert injector.all_fired()
        # Recovery needed version n-2, long evicted: replay from block 1.
        assert res.trace.reexecutions >= n - 2
        assert store.read(BlockRef("buf", n)) == sum(range(1, n + 1))


class TestHangDetection:
    def test_producer_that_never_writes_trips_recovery_budget(self):
        # An application bug -- a task that never writes its declared
        # output -- turns into an unbounded recover/reset loop (the
        # consumer keeps observing a missing input, recovery keeps
        # re-running the broken producer).  The budget converts the
        # livelock into a diagnosable error.
        def compute(key, ctx):
            if key == "b":
                ctx.read(BlockRef("a", 0))  # producer "a" never wrote it
                ctx.write(BlockRef("b", 0), 1)
            # "a" writes nothing: the bug under test.

        spec = ExplicitTaskGraph([("a", "b")], compute=compute)
        store = BlockStore()
        trace = ExecutionTrace()
        sched = FTScheduler(
            spec, InlineRuntime(), store=store, trace=trace, max_recoveries=20
        )
        with pytest.raises(SchedulerError, match="recovery budget"):
            sched.run()


class TestFaultsAtScaleOfWorkers:
    @pytest.mark.parametrize("workers", [1, 2, 8, 16, 44])
    def test_worker_sweep_with_faults(self, workers):
        spec = grid_graph(5, 5)
        expected = run_scheduler(spec).store.peek(BlockRef((4, 4), 0))
        plan = FaultPlan.single((2, 2), "after_compute")
        res, _, _ = run_with_plan(spec, plan, workers=workers, seed=workers)
        assert res.store.peek(BlockRef((4, 4), 0)) == expected


class TestTraceConsistency:
    def test_recoveries_match_map_replacements(self):
        spec = grid_graph(5, 5)
        plan = FaultPlan(
            events=[
                FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE),
                FaultEvent((3, 2), FaultPhase.AFTER_COMPUTE),
            ],
            implied_reexecutions=2,
        )
        res, _, sched = run_with_plan(spec, plan)
        assert sched.map.replacements == res.trace.total_recoveries

    def test_faults_observed_at_least_injected_when_observable(self):
        spec = chain_graph(6)
        plan = FaultPlan.single(2, "after_compute")
        res, _, _ = run_with_plan(spec, plan)
        assert res.trace.faults_observed >= 1
        assert res.trace.faults_injected == 1
