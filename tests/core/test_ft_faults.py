"""Fault-injection tests for the FT scheduler, organized by the paper's
six recovery guarantees (Section IV)."""

import pytest

from repro.core import FTScheduler, TaskStatus
from repro.exceptions import SchedulerError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.faults.planner import plan_faults, plan_recursive_faults
from repro.graph.builders import diamond_graph, grid_graph
from repro.graph.explicit import ExplicitTaskGraph
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_with_plan(spec, plan, workers=1, seed=0, store=None):
    store = store if store is not None else BlockStore()
    trace = ExecutionTrace()
    injector = FaultInjector(plan, spec, store, trace)
    runtime = SimulatedRuntime(workers=workers, seed=seed)
    sched = FTScheduler(spec, runtime, store=store, hooks=injector, trace=trace)
    result = sched.run()
    return result, injector, sched


def reference_sink(spec):
    from repro.core import run_scheduler

    return run_scheduler(spec).store.peek(BlockRef(spec.sink_key(), 0))


class TestGuarantee1RecoverOnce:
    """Each failure is recovered at most once."""

    @pytest.mark.parametrize("phase", ["before_compute", "after_compute"])
    def test_single_recovery_per_victim(self, phase):
        spec = grid_graph(5, 5)
        victim = (2, 2)
        plan = FaultPlan.single(victim, phase)
        res, injector, _ = run_with_plan(spec, plan)
        assert res.trace.recoveries[victim] == 1
        assert injector.all_fired()

    def test_many_observers_one_recovery(self):
        # The failed task has 8 successors; several observe the fault.
        spec = diamond_graph(width=8)
        plan = FaultPlan.single("src", "after_compute")
        res, _, sched = run_with_plan(spec, plan)
        assert res.trace.recoveries["src"] == 1
        assert sched.recovery_table.recovering_life("src") == 1

    def test_parallel_observers_one_recovery(self):
        spec = diamond_graph(width=16)
        plan = FaultPlan.single("src", "after_compute")
        for seed in range(5):
            res, _, _ = run_with_plan(spec, plan, workers=8, seed=seed)
            assert res.trace.recoveries["src"] == 1


class TestGuarantee2StatusRederived:
    """A recovered task restarts as a fresh VISITED incarnation."""

    def test_new_incarnation_completes(self):
        spec = grid_graph(4, 4)
        plan = FaultPlan.single((1, 1), "after_compute")
        _, _, sched = run_with_plan(spec, plan)
        rec, life = sched.map.get((1, 1))
        assert life == 2
        assert rec.status is TaskStatus.COMPLETED
        assert not rec.corrupted
        assert rec.recovery

    def test_unrelated_tasks_keep_first_life(self):
        spec = grid_graph(4, 4)
        plan = FaultPlan.single((1, 1), "after_compute")
        _, _, sched = run_with_plan(spec, plan)
        rec, life = sched.map.get((3, 0))
        assert life == 1


class TestGuarantee3JoinDecrementedOncePerPred:
    def test_no_task_computes_with_missing_inputs(self):
        # If a join counter were double-decremented, a consumer would
        # compute before a predecessor and read a missing block, which
        # the strict context turns into an error or a wrong result.
        spec = grid_graph(5, 5)
        expected = reference_sink(spec)
        plan = FaultPlan.single((0, 0), "after_compute")
        res, _, _ = run_with_plan(spec, plan)
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected

    def test_duplicate_notifications_dropped_as_stale(self):
        # After recovery of src, consumers that were re-enqueued can be
        # notified again; the bit vector must absorb the duplicates.
        spec = diamond_graph(width=8)
        plan = FaultPlan.single("src", "after_compute")
        res, _, _ = run_with_plan(spec, plan)
        assert res.trace.reexecutions <= 1 + 8  # never more than graph region


class TestGuarantee4WaitingTasksNotified:
    @pytest.mark.parametrize("phase", ["before_compute", "after_compute", "after_notify"])
    def test_execution_never_hangs(self, phase):
        spec = grid_graph(6, 6)
        index_pool = [(i, j) for i in range(6) for j in range(6)][1:-1]
        for victim in index_pool[::7]:
            plan = FaultPlan.single(victim, phase)
            res, _, _ = run_with_plan(spec, plan)  # SchedulerError would fail
            assert res.trace.tasks_computed == len(spec)

    def test_notify_array_reconstruction_counted(self):
        # before_compute faults strike while successors wait, so recovery
        # must rebuild notify arrays for at least the waiting successors.
        spec = grid_graph(5, 5)
        plan = FaultPlan.single((2, 2), "after_compute")
        res, _, _ = run_with_plan(spec, plan)
        assert res.trace.notify_reinits >= 1


class TestGuarantee5ComputeTimeDataFaults:
    def test_consumer_detects_corrupt_input_and_recovers_producer(self):
        # On a chain the consumer registers with the producer *before* it
        # computes, so an after-notify fault is deterministically detected
        # inside the consumer's COMPUTE (reading the corrupt block), which
        # must reset the consumer and recover the producer.
        from repro.graph.builders import chain_graph

        spec = chain_graph(5)
        victim = 2
        plan = FaultPlan.single(victim, "after_notify")
        expected = reference_sink(spec)
        res, _, _ = run_with_plan(spec, plan)
        assert res.trace.recoveries[victim] == 1
        assert res.trace.resets >= 1
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected

    def test_reset_node_rearms_and_replays(self):
        from repro.graph.builders import chain_graph

        spec = chain_graph(5)
        plan = FaultPlan.single(1, "after_notify")
        res, _, _ = run_with_plan(spec, plan)
        # The consumer's first COMPUTE attempt fails on the corrupt input
        # and re-runs after the reset.
        assert res.trace.compute_failures[2] == 1
        assert res.trace.computes[2] == 2


class TestGuarantee6RecursiveRecovery:
    @pytest.mark.parametrize("depth", [2, 3, 5])
    def test_fault_during_every_recovery(self, depth):
        spec = grid_graph(4, 4)
        victim = (2, 2)
        plan = plan_recursive_faults(spec, victim, phase="after_compute", depth=depth)
        expected = reference_sink(spec)
        res, injector, sched = run_with_plan(spec, plan)
        assert injector.all_fired()
        assert res.trace.recoveries[victim] == depth
        _, life = sched.map.get(victim)
        assert life == depth + 1
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected

    def test_before_compute_recursive(self):
        spec = grid_graph(4, 4)
        plan = plan_recursive_faults(spec, (1, 2), phase="before_compute", depth=3)
        res, injector, _ = run_with_plan(spec, plan)
        assert injector.all_fired()
        assert res.trace.reexecutions == 0  # never any lost compute


class TestUnobservedFaults:
    def test_after_notify_fault_nobody_reads_is_not_recovered(self):
        # Compute bodies that ignore their inputs: the corrupted data is
        # never read, so (per the paper) the failed task is not recovered.
        spec = ExplicitTaskGraph(
            [("a", "b"), ("b", "c")],
            compute=lambda k, ctx: ctx.write(BlockRef(k, 0), k),
        )
        plan = FaultPlan.single("a", "after_notify")
        res, injector, _ = run_with_plan(spec, plan)
        assert injector.all_fired()
        assert res.trace.total_recoveries == 0
        assert res.trace.reexecutions == 0


class TestResultIntegrity:
    """Theorem 1: same result with and without faults."""

    @pytest.mark.parametrize("phase", ["before_compute", "after_compute", "after_notify"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sink_value_unchanged(self, phase, workers):
        spec = grid_graph(6, 6)
        expected = reference_sink(spec)
        plan = plan_faults(spec, phase=phase, task_type="v=rand", count=6, seed=13)
        res, _, _ = run_with_plan(spec, plan, workers=workers, seed=41)
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected

    def test_massive_fault_load(self):
        # A third of all tasks fail; execution still completes correctly.
        spec = grid_graph(6, 6)
        expected = reference_sink(spec)
        plan = plan_faults(spec, phase="after_compute", task_type="v=rand", count=12, seed=1)
        res, _, _ = run_with_plan(spec, plan)
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected
        assert res.trace.reexecutions >= 12


class TestSinkFaults:
    """Lemma 3: the sink itself can fail and still complete."""

    @pytest.mark.parametrize("phase", ["before_compute", "after_compute"])
    def test_sink_failure_recovered(self, phase):
        spec = grid_graph(4, 4)
        expected = reference_sink(spec)
        plan = FaultPlan.single(spec.sink_key(), phase)
        res, injector, sched = run_with_plan(spec, plan)
        assert injector.all_fired()
        rec, life = sched.map.get(spec.sink_key())
        assert life == 2
        assert rec.status is TaskStatus.COMPLETED
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected


class TestRecoveryBudget:
    def test_budget_guard_trips_on_tiny_budget(self):
        spec = grid_graph(4, 4)
        store = BlockStore()
        trace = ExecutionTrace()
        plan = plan_recursive_faults(spec, (2, 2), depth=5)
        injector = FaultInjector(plan, spec, store, trace)
        sched = FTScheduler(
            spec, InlineRuntime(), store=store, hooks=injector, trace=trace, max_recoveries=2
        )
        with pytest.raises(SchedulerError, match="recovery budget"):
            sched.run()
