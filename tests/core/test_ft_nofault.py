"""Fault-tolerant scheduler in the absence of faults.

Property P6 (DESIGN.md): without faults the FT scheduler must behave
exactly like baseline NABBIT -- every task executed once, identical
results, no recovery machinery engaged.
"""

import pytest

from repro.core import FTScheduler, TaskStatus, run_scheduler
from repro.graph.builders import chain_graph, diamond_graph, fork_join_graph, grid_graph, random_dag
from repro.graph.taskspec import BlockRef
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime

GRAPHS = [
    chain_graph(12),
    diamond_graph(width=6),
    fork_join_graph(levels=3, fanout=5),
    grid_graph(6, 6),
    random_dag(60, edge_prob=0.15, seed=11),
]


class TestEquivalenceWithBaseline:
    @pytest.mark.parametrize("spec", GRAPHS, ids=lambda g: f"{len(g)}tasks")
    def test_same_result_as_baseline(self, spec):
        ref = run_scheduler(spec, fault_tolerant=False).store.peek(BlockRef(spec.sink_key(), 0))
        got = run_scheduler(spec, fault_tolerant=True).store.peek(BlockRef(spec.sink_key(), 0))
        assert got == ref

    @pytest.mark.parametrize("spec", GRAPHS, ids=lambda g: f"{len(g)}tasks")
    def test_every_task_exactly_once(self, spec):
        res = run_scheduler(spec, fault_tolerant=True)
        assert res.trace.total_computes == len(spec)
        assert res.trace.max_executions == 1
        assert res.trace.reexecutions == 0

    def test_no_recovery_machinery_engaged(self):
        res = run_scheduler(grid_graph(6, 6))
        t = res.trace
        assert t.total_recoveries == 0
        assert t.recovery_skips == 0
        assert t.resets == 0
        assert t.notify_reinits == 0
        assert t.faults_observed == 0
        assert t.compute_failures == {}

    def test_no_stale_frames_without_recovery(self):
        res = run_scheduler(grid_graph(6, 6))
        assert res.trace.stale_frames == 0

    def test_recovery_table_untouched(self):
        spec = grid_graph(4, 4)
        sched = FTScheduler(spec, InlineRuntime())
        sched.run()
        assert len(sched.recovery_table) == 0


class TestRuntimes:
    @pytest.mark.parametrize("workers", [1, 3, 9])
    def test_simulated(self, workers):
        spec = grid_graph(5, 5)
        res = run_scheduler(spec, runtime=SimulatedRuntime(workers=workers, seed=workers))
        assert res.trace.reexecutions == 0

    def test_threaded(self):
        spec = grid_graph(5, 5)
        res = run_scheduler(spec, runtime=ThreadedRuntime(workers=4, seed=1))
        assert res.trace.reexecutions == 0

    def test_statuses_all_completed(self):
        spec = grid_graph(4, 4)
        sched = FTScheduler(spec, InlineRuntime())
        sched.run()
        for key in spec.vertices():
            rec, life = sched.map.get(key)
            assert rec.status is TaskStatus.COMPLETED
            assert life == 1


class TestJoinProtocol:
    def test_notifications_exactly_edges_plus_self(self):
        from repro.graph.analysis import graph_stats

        spec = grid_graph(5, 5)
        res = run_scheduler(spec)
        st = graph_stats(spec)
        assert res.trace.notifications == st.edges + st.tasks

    def test_stale_notifications_zero_serial(self):
        res = run_scheduler(grid_graph(5, 5))
        assert res.trace.stale_notifications == 0


class TestOverheadModel:
    def test_ft_costs_slightly_more_than_baseline(self):
        # With realistic task costs (compute >> scheduler bookkeeping, as
        # in the paper's benchmarks) the FT additions stay marginal.
        from repro.graph.builders import grid_graph as grid

        spec = grid(8, 8, cost=lambda k: 200.0)
        base = run_scheduler(spec, runtime=SimulatedRuntime(workers=1), fault_tolerant=False)
        ft = run_scheduler(spec, runtime=SimulatedRuntime(workers=1), fault_tolerant=True)
        assert ft.makespan > base.makespan
        assert ft.makespan < base.makespan * 1.02
