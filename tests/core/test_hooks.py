"""CompositeHooks: fan-out order and log/trace sharing semantics."""

from repro.core.hooks import NULL_HOOKS, CompositeHooks, NullHooks


class Recorder:
    def __init__(self, name, calls, trace=None, event_log=None):
        self.name = name
        self.calls = calls
        self.trace = trace
        self.event_log = event_log

    def on_task_waiting(self, record):
        self.calls.append((self.name, "waiting", record))

    def on_after_compute(self, record):
        self.calls.append((self.name, "compute", record))

    def on_after_notify(self, record):
        self.calls.append((self.name, "notify", record))


class TestFanOut:
    def test_children_called_in_order(self):
        calls = []
        hooks = CompositeHooks(Recorder("a", calls), Recorder("b", calls))
        hooks.on_task_waiting("r1")
        hooks.on_after_compute("r2")
        hooks.on_after_notify("r3")
        assert calls == [
            ("a", "waiting", "r1"), ("b", "waiting", "r1"),
            ("a", "compute", "r2"), ("b", "compute", "r2"),
            ("a", "notify", "r3"), ("b", "notify", "r3"),
        ]

    def test_none_children_dropped(self):
        calls = []
        hooks = CompositeHooks(None, Recorder("a", calls), None)
        hooks.on_after_compute("r")
        assert calls == [("a", "compute", "r")]

    def test_hookless_children_tolerated(self):
        hooks = CompositeHooks(NullHooks())
        hooks.on_task_waiting("r")
        assert hooks.trace is None is hooks.event_log


class TestSharing:
    """Regression: the scheduler must share its trace/log whenever ANY
    child slot is unwired, and the setter must not clobber wired ones."""

    def test_getter_none_while_any_child_unwired(self):
        calls = []
        wired = Recorder("a", calls, trace="t1")
        unwired = Recorder("b", calls)
        assert CompositeHooks(wired, unwired).trace is None
        assert CompositeHooks(wired).trace == "t1"

    def test_setter_fills_only_unwired_children(self):
        calls = []
        wired = Recorder("a", calls, trace="t1", event_log="l1")
        unwired = Recorder("b", calls)
        hooks = CompositeHooks(wired, unwired)
        hooks.trace = "t2"
        hooks.event_log = "l2"
        assert wired.trace == "t1" and unwired.trace == "t2"
        assert wired.event_log == "l1" and unwired.event_log == "l2"
        assert hooks.trace == "t1"  # first wired child wins once all wired

    def test_scheduler_shares_with_composite(self):
        # The end-to-end contract: both children observe the scheduler's
        # own trace and event log (replay parity depends on this).
        from repro.apps import make_app
        from repro.core import FTScheduler
        from repro.obs.events import EventLog
        from repro.runtime import InlineRuntime

        calls = []
        a, b = Recorder("a", calls), Recorder("b", calls)
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        app.seed_store(store)
        sched = FTScheduler(app, InlineRuntime(), store=store,
                            hooks=CompositeHooks(a, b), event_log=EventLog())
        sched.run()
        assert a.trace is b.trace is sched.trace
        assert a.event_log is b.event_log is sched.log

    def test_null_hooks_singleton_has_no_slots(self):
        assert not hasattr(NULL_HOOKS, "trace")
        assert not hasattr(NULL_HOOKS, "event_log")
