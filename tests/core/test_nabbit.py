"""Tests for the baseline NABBIT scheduler (no fault tolerance)."""

import pytest

from repro.core import NabbitScheduler, TaskStatus, run_scheduler
from repro.exceptions import SchedulerError
from repro.graph.builders import chain_graph, diamond_graph, fork_join_graph, grid_graph, random_dag
from repro.graph.taskspec import BlockRef
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime


def sink_value(result, spec):
    return result.store.peek(BlockRef(spec.sink_key(), 0))


GRAPHS = [
    chain_graph(12),
    diamond_graph(width=6),
    fork_join_graph(levels=3, fanout=5),
    grid_graph(6, 6),
    random_dag(60, edge_prob=0.15, seed=11),
]


class TestCorrectExecution:
    @pytest.mark.parametrize("spec", GRAPHS, ids=lambda g: f"{len(g)}tasks")
    def test_inline_runs_every_task_once(self, spec):
        res = run_scheduler(spec, fault_tolerant=False)
        assert res.trace.total_computes == len(spec)
        assert res.trace.max_executions == 1

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_simulated_matches_inline_result(self, workers):
        spec = grid_graph(5, 5)
        ref = sink_value(run_scheduler(spec, fault_tolerant=False), spec)
        res = run_scheduler(
            spec, runtime=SimulatedRuntime(workers=workers, seed=workers), fault_tolerant=False
        )
        assert sink_value(res, spec) == ref

    def test_threaded_matches_inline_result(self):
        spec = grid_graph(5, 5)
        ref = sink_value(run_scheduler(spec, fault_tolerant=False), spec)
        res = run_scheduler(spec, runtime=ThreadedRuntime(workers=4, seed=3), fault_tolerant=False)
        assert sink_value(res, spec) == ref

    def test_all_statuses_completed(self):
        spec = grid_graph(4, 4)
        sched = NabbitScheduler(spec, InlineRuntime())
        sched.run()
        for key in spec.vertices():
            rec, _ = sched.map.get(key)
            assert rec is not None and rec.status is TaskStatus.COMPLETED

    def test_single_task_graph(self):
        spec = chain_graph(1)
        res = run_scheduler(spec, fault_tolerant=False)
        assert res.trace.total_computes == 1


class TestAccounting:
    def test_notifications_cover_edges_plus_self(self):
        spec = grid_graph(4, 4)
        res = run_scheduler(spec, fault_tolerant=False)
        from repro.graph.analysis import graph_stats

        st = graph_stats(spec)
        # One notification per dependence edge plus one self-notification
        # per task.
        assert res.trace.notifications == st.edges + st.tasks

    def test_scheduler_name(self):
        res = run_scheduler(chain_graph(2), fault_tolerant=False)
        assert res.scheduler == "nabbit"

    def test_makespan_positive(self):
        res = run_scheduler(chain_graph(5), fault_tolerant=False)
        assert res.makespan > 0


class TestGuards:
    def test_single_use(self):
        spec = chain_graph(3)
        sched = NabbitScheduler(spec, InlineRuntime())
        sched.run()
        with pytest.raises(SchedulerError, match="single-use"):
            sched.run()

    def test_hooks_called_for_baseline(self):
        # The baseline accepts lifecycle hooks (the repro.detect seam);
        # it has no recovery path, so hooks serve measurement only.
        calls = []

        class Recorder:
            def on_task_waiting(self, record):
                calls.append(("waiting", record.key))

            def on_after_compute(self, record):
                calls.append(("after_compute", record.key))

            def on_after_notify(self, record):
                calls.append(("after_notify", record.key))

        run_scheduler(chain_graph(3), fault_tolerant=False, hooks=Recorder())
        phases = {phase for phase, _ in calls}
        assert phases == {"waiting", "after_compute", "after_notify"}
        assert len([c for c in calls if c[0] == "after_compute"]) == 3
