"""The paper's Figure 1 running example, executed literally.

Section II walks through a five-task graph (A source, E sink) where
"task C reuses the space allocated by task A for its output (as the only
other use of A's output is by B, which needs to finish before C's
execution)".  Task B fails; C and D may have observed B's computation;
B's recovery needs A's output, which C has meanwhile overwritten -- so
"A will have to be recovered as well.  Finally ... it is important that
A also recovers only once."

This test builds exactly that graph and buffer-sharing relationship,
injects B's failure, and asserts the narrative's outcomes.
"""

import pytest

from repro.core import FTScheduler, run_scheduler
from repro.exceptions import SchedulerError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultPlan
from repro.graph.taskspec import BlockRef, Key, TaskSpecBase
from repro.graph.validate import validate_spec
from repro.memory.allocator import Reuse
from repro.memory.blockstore import BlockStore
from repro.runtime import InlineRuntime
from repro.runtime.tracing import ExecutionTrace

# E's predecessor order (D, C) makes the serial depth-first schedule
# explore and run C *before* D ever observes B -- the Section II
# interleaving where C has already overwritten A's output by the time
# B's failure is detected.
PREDS = {"A": (), "B": ("A",), "C": ("A", "B"), "D": ("B",), "E": ("D", "C")}
SUCCS = {"A": ("B", "C"), "B": ("C", "D"), "C": ("E",), "D": ("E",), "E": ()}

# A and C share one buffer ("buf"): A writes version 0, C version 1.
OUTPUTS = {
    "A": BlockRef("buf", 0),
    "B": BlockRef("b_out", 0),
    "C": BlockRef("buf", 1),
    "D": BlockRef("d_out", 0),
    "E": BlockRef("e_out", 0),
}


class Figure1Spec(TaskSpecBase):
    def sink_key(self) -> Key:
        return "E"

    def predecessors(self, key):
        return PREDS[key]

    def successors(self, key):
        return SUCCS[key]

    def outputs(self, key):
        return (OUTPUTS[key],)

    def inputs(self, key):
        return tuple(OUTPUTS[p] for p in PREDS[key])

    def producer(self, ref):
        for key, out in OUTPUTS.items():
            if out == ref:
                return key
        raise KeyError(ref)

    def compute(self, key, ctx):
        if key == "C":
            # The paper's interleaving: "even before C is aware of B's
            # failure, it could be overwriting A's output".  C streams
            # into the shared buffer (consuming A's data in place) and
            # only then touches B's output -- where the corruption is
            # detected.
            a = ctx.read(OUTPUTS["A"])
            ctx.write(OUTPUTS["C"], ("C", "partial", a))  # v1 evicts v0
            b = ctx.read(OUTPUTS["B"])
            ctx.write(OUTPUTS["C"], ("C", (a, b)))
            return
        parts = tuple(ctx.read(r) for r in self.inputs(key))
        ctx.write(OUTPUTS[key], (key, parts))


class TestFigure1Narrative:
    def setup_method(self):
        self.spec = Figure1Spec()
        validate_spec(self.spec)
        ref_store = BlockStore(Reuse())
        run_scheduler(self.spec, store=ref_store)
        self.expected = ref_store.peek(OUTPUTS["E"])

    def run_b_failure(self, phase):
        store = BlockStore(Reuse())
        trace = ExecutionTrace()
        injector = FaultInjector(FaultPlan.single("B", phase), self.spec, store, trace)
        sched = FTScheduler(
            self.spec, InlineRuntime(), store=store, hooks=injector,
            trace=trace, record_events=True,
        )
        sched.run()
        return sched, store, trace

    def test_fault_free_reuse_is_safe(self):
        # C's reuse of A's buffer is legal: A's only other consumer (B)
        # precedes C.  Fault-free runs never trip on it.
        store = BlockStore(Reuse())
        run_scheduler(self.spec, store=store)
        assert store.stats.overwritten_reads == 0

    def test_b_fails_after_notify_a_recovered_exactly_once(self):
        """The full Section II scenario: C observed B and overwrote A's
        output before B's failure is detected; recovering B forces A's
        recovery -- once, not once per observer."""
        sched, store, trace = self.run_b_failure("after_notify")
        # B recovered once (Guarantee 1)...
        assert trace.recoveries["B"] == 1
        # ... and A was recovered exactly once to regenerate the
        # overwritten input ("it is important that A also recovers only
        # once").
        assert trace.recoveries["A"] == 1
        # C and D were eventually (re-)notified and the DAG completed
        # with the fault-free result (Theorem 1).
        assert store.peek(OUTPUTS["E"]) == self.expected

    def test_b_fails_after_compute_no_cascade(self):
        """Detected before C could run: B alone re-executes; A untouched."""
        sched, store, trace = self.run_b_failure("after_compute")
        assert trace.recoveries["B"] == 1
        assert trace.recoveries.get("A", 0) == 0
        assert store.peek(OUTPUTS["E"]) == self.expected

    def test_event_narrative_orders_a_after_b(self):
        sched, _, _ = self.run_b_failure("after_notify")
        kinds = [(e[0], e[1]) for e in sched.events if e[0] == "recovery"]
        assert ("recovery", "B") in kinds
        assert ("recovery", "A") in kinds
        assert kinds.index(("recovery", "B")) < kinds.index(("recovery", "A"))
