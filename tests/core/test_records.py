"""Unit tests for task records (join counter + bit vector protocol)."""

import pytest

from repro.core.records import TaskRecord
from repro.core.status import TaskStatus
from repro.exceptions import TaskCorruptionError


class TestInitialization:
    def test_join_counts_preds_plus_self(self):
        r = TaskRecord("k", n_preds=3)
        assert r.join == 4

    def test_bit_vector_all_set(self):
        r = TaskRecord("k", n_preds=3)
        assert r.bit_vector == 0b1111

    def test_source_task(self):
        r = TaskRecord("k", n_preds=0)
        assert r.join == 1
        assert r.bit_vector == 0b1

    def test_initial_status_visited(self):
        assert TaskRecord("k", 1).status is TaskStatus.VISITED

    def test_life_default_and_custom(self):
        assert TaskRecord("k", 0).life == 1
        assert TaskRecord("k", 0, life=7).life == 7


class TestBitProtocol:
    def test_unset_returns_true_once(self):
        r = TaskRecord("k", n_preds=2)
        assert r.try_unset_bit(1)
        assert not r.try_unset_bit(1)

    def test_unset_independent_bits(self):
        r = TaskRecord("k", n_preds=2)
        assert r.try_unset_bit(0)
        assert r.try_unset_bit(2)  # the self slot
        assert r.bit_vector == 0b010

    def test_reset_for_reuse_restores_everything(self):
        r = TaskRecord("k", n_preds=2)
        r.try_unset_bit(0)
        r.try_unset_bit(1)
        r.join = 0
        r.reset_for_reuse()
        assert r.join == 3
        assert r.bit_vector == 0b111

    def test_wide_bit_vector(self):
        r = TaskRecord("k", n_preds=200)
        assert r.bit_vector == (1 << 201) - 1
        assert r.try_unset_bit(199)


class TestCorruption:
    def test_check_clean(self):
        TaskRecord("k", 0).check()

    def test_check_corrupted_raises_with_identity(self):
        r = TaskRecord("k", 0, life=3)
        r.corrupted = True
        with pytest.raises(TaskCorruptionError) as ei:
            r.check()
        assert ei.value.key == "k"
        assert ei.value.life == 3

    def test_status_ordering(self):
        assert TaskStatus.VISITED < TaskStatus.COMPUTED < TaskStatus.COMPLETED
