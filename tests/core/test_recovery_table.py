"""Unit tests for Guarantee 1's recovery table."""

import threading

from repro.core.recovery_table import RecoveryTable


class TestClaimSemantics:
    def test_first_failure_claims(self):
        t = RecoveryTable()
        assert t.check_and_claim("k", 1)

    def test_same_incarnation_claimed_once(self):
        t = RecoveryTable()
        assert t.check_and_claim("k", 1)
        assert not t.check_and_claim("k", 1)
        assert not t.check_and_claim("k", 1)

    def test_next_incarnation_claimable(self):
        t = RecoveryTable()
        assert t.check_and_claim("k", 1)
        assert t.check_and_claim("k", 2)
        assert not t.check_and_claim("k", 2)

    def test_stale_observer_of_old_incarnation_rejected(self):
        t = RecoveryTable()
        assert t.check_and_claim("k", 2)  # record now 2
        assert not t.check_and_claim("k", 1)

    def test_skipping_incarnations_rejected(self):
        # A failure of life 5 when the table last saw life 1 means lives
        # 2-4 never failed -- impossible in the protocol; reject.
        t = RecoveryTable()
        assert t.check_and_claim("k", 1)
        assert not t.check_and_claim("k", 5)

    def test_first_failure_at_later_life(self):
        # A task can fail for the first time at any incarnation the
        # injector targets.
        t = RecoveryTable()
        assert t.check_and_claim("k", 3)
        assert not t.check_and_claim("k", 3)
        assert t.check_and_claim("k", 4)

    def test_keys_independent(self):
        t = RecoveryTable()
        assert t.check_and_claim("a", 1)
        assert t.check_and_claim("b", 1)
        assert len(t) == 2

    def test_recovering_life(self):
        t = RecoveryTable()
        assert t.recovering_life("k") is None
        t.check_and_claim("k", 1)
        assert t.recovering_life("k") == 1


class TestConcurrency:
    def test_exactly_one_winner_per_incarnation(self):
        t = RecoveryTable()
        for life in (1, 2, 3):
            wins = []
            lock = threading.Lock()

            def contend(lf=life):
                if t.check_and_claim("k", lf):
                    with lock:
                        wins.append(1)

            threads = [threading.Thread(target=contend) for _ in range(12)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert len(wins) == 1, f"life {life}"

    def test_counters(self):
        t = RecoveryTable()
        t.check_and_claim("k", 1)
        t.check_and_claim("k", 1)
        assert t.claims == 1
        assert t.rejections == 1
