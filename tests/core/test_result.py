"""Tests for SchedulerResult."""

import pytest

from repro.core import run_scheduler
from repro.graph.builders import chain_graph
from repro.runtime import SimulatedRuntime


class TestSchedulerResult:
    def test_makespan_property(self):
        res = run_scheduler(chain_graph(4))
        assert res.makespan == res.run.makespan

    def test_overhead_vs(self):
        spec = chain_graph(6, cost=lambda k: 100.0)
        base = run_scheduler(spec, runtime=SimulatedRuntime(workers=1),
                             fault_tolerant=False)
        ft = run_scheduler(spec, runtime=SimulatedRuntime(workers=1))
        overhead = ft.overhead_vs(base)
        assert overhead > 0
        assert base.overhead_vs(ft) < 0

    def test_overhead_vs_zero_baseline_rejected(self):
        res = run_scheduler(chain_graph(2))
        fake = run_scheduler(chain_graph(2))
        fake.run.makespan = 0.0
        with pytest.raises(ValueError):
            res.overhead_vs(fake)

    def test_scheduler_names(self):
        assert run_scheduler(chain_graph(2)).scheduler == "ft"
        assert run_scheduler(chain_graph(2), fault_tolerant=False).scheduler == "nabbit"

    def test_store_carries_results(self):
        from repro.graph.taskspec import BlockRef

        res = run_scheduler(chain_graph(3))
        assert res.store.peek(BlockRef(2, 0)) is not None
