"""Unit tests for the concurrent task map and life numbers."""

import threading

import pytest

from repro.core.taskmap import TaskMap


def simple_map():
    return TaskMap(n_preds_of=lambda k: 2)


class TestInsertion:
    def test_first_insert(self):
        m = simple_map()
        rec, life, inserted = m.insert_if_absent("a")
        assert inserted
        assert life == 1
        assert rec.join == 3  # 2 preds + self

    def test_second_insert_returns_existing(self):
        m = simple_map()
        rec1, _, _ = m.insert_if_absent("a")
        rec2, life, inserted = m.insert_if_absent("a")
        assert not inserted
        assert rec2 is rec1
        assert life == 1

    def test_exactly_one_inserter_under_contention(self):
        m = simple_map()
        wins = []
        lock = threading.Lock()

        def contend():
            _, _, inserted = m.insert_if_absent("hot")
            if inserted:
                with lock:
                    wins.append(1)

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestGet:
    def test_missing(self):
        assert simple_map().get("nope") == (None, 0)

    def test_present(self):
        m = simple_map()
        rec, _, _ = m.insert_if_absent("a")
        got, life = m.get("a")
        assert got is rec
        assert life == 1


class TestReplace:
    def test_replace_bumps_life(self):
        m = simple_map()
        old, _, _ = m.insert_if_absent("a")
        new, life = m.replace("a")
        assert life == 2
        assert new is not old
        assert new.life == 2
        assert m.get("a") == (new, 2)

    def test_replace_resets_state(self):
        m = simple_map()
        rec, _, _ = m.insert_if_absent("a")
        rec.join = 0
        rec.try_unset_bit(0)
        new, _ = m.replace("a")
        assert new.join == 3
        assert new.bit_vector == 0b111

    def test_replace_missing_key_raises(self):
        with pytest.raises(KeyError):
            simple_map().replace("ghost")

    def test_repeated_replacement_monotonic_lives(self):
        m = simple_map()
        m.insert_if_absent("a")
        lives = [m.replace("a")[1] for _ in range(5)]
        assert lives == [2, 3, 4, 5, 6]


class TestBookkeeping:
    def test_len_contains_counters(self):
        m = simple_map()
        m.insert_if_absent("a")
        m.insert_if_absent("b")
        m.replace("a")
        assert len(m) == 2
        assert "a" in m and "c" not in m
        assert m.inserts == 2
        assert m.replacements == 1
