"""ChecksumStore: verify-on-access and the single-count discipline."""

import numpy as np
import pytest

from repro.detect.checksum import ChecksumStore
from repro.exceptions import DataCorruptionError
from repro.graph.taskspec import BlockRef
from repro.obs.events import EventKind, EventLog
from repro.runtime.tracing import ExecutionTrace


def ref(v, block="b"):
    return BlockRef(block, v)


def bump(value):
    return value + 1


class TestCleanPath:
    def test_write_read_roundtrip(self):
        s = ChecksumStore()
        s.write(ref(0), np.arange(4))
        np.testing.assert_array_equal(s.read(ref(0)), np.arange(4))
        assert s.detection.fingerprints == 1
        assert s.detection.verifications == 1
        assert s.detection.mismatches == 0

    def test_status_and_availability(self):
        s = ChecksumStore()
        s.write(ref(0), 5)
        assert s.status_of(ref(0)) == "ok"
        assert s.is_available(ref(0))

    def test_pinned_versions_unverified(self):
        s = ChecksumStore()
        s.pin(ref(0), "input")
        assert s.read(ref(0)) == "input"
        assert s.detection.unverified_reads >= 1
        assert s.detection.mismatches == 0


class TestDetection:
    def test_read_detects_silent_mutation(self):
        s = ChecksumStore()
        s.write(ref(0), 10)
        assert s.corrupt_data(ref(0), bump)
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))
        assert s.detection.mismatches == 1
        assert s.stats.corruptions_marked == 1
        assert s.status_of(ref(0)) == "corrupted"

    def test_status_of_detects_without_raising(self):
        s = ChecksumStore()
        s.write(ref(0), np.ones(3))
        s.corrupt_data(ref(0), lambda a: a + 1)
        assert s.status_of(ref(0)) == "corrupted"
        assert not s.is_available(ref(0))

    def test_rewrite_clears_detection(self):
        s = ChecksumStore()
        s.write(ref(0), 1)
        s.corrupt_data(ref(0), bump)
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))
        s.write(ref(0), 99)  # recovery regenerates the version
        assert s.read(ref(0)) == 99
        assert s.status_of(ref(0)) == "ok"

    def test_verify_disabled(self):
        s = ChecksumStore(verify_on_read=False)
        s.write(ref(0), 1)
        s.corrupt_data(ref(0), bump)
        assert s.read(ref(0)) == 2  # silently wrong, by request
        assert s.detection.mismatches == 0

    @pytest.mark.parametrize("digest", ["crc32", "adler32", "blake2b", "sha256"])
    def test_all_digests_detect(self, digest):
        s = ChecksumStore(digest=digest)
        s.write(ref(0), np.linspace(0, 1, 16))
        s.corrupt_data(ref(0), lambda a: a + 1e-12)
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))

    def test_audit_sweeps_unread_versions(self):
        s = ChecksumStore()
        s.write(ref(0), 1)
        s.write(ref(0, block="c"), 2)
        s.corrupt_data(ref(0, block="c"), bump)
        bad = s.audit()
        assert bad == [ref(0, block="c")]
        assert s.status_of(ref(0, block="c")) == "corrupted"
        assert s.status_of(ref(0)) == "ok"


class TestSingleCountRegression:
    """A version both checksum-mismatched and flag-corrupted is one
    corruption, not two (ISSUE satellite: StoreStats audit)."""

    def test_checksum_then_flag_counts_once(self):
        s = ChecksumStore()
        s.write(ref(0), 7)
        s.corrupt_data(ref(0), bump)
        assert s.status_of(ref(0)) == "corrupted"  # checksum marks the flag
        assert s.mark_corrupted(ref(0))  # a flag injector hits the same version
        assert s.stats.corruptions_marked == 1
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))
        # The read took the base-class flag path: one corrupted_read, and
        # no second mismatch was recorded.
        assert s.stats.corrupted_reads == 1
        assert s.detection.mismatches == 1

    def test_flag_then_checksum_counts_once(self):
        s = ChecksumStore()
        s.write(ref(0), 7)
        s.mark_corrupted(ref(0))
        s.corrupt_data(ref(0), bump)
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))
        assert s.stats.corruptions_marked == 1
        assert s.stats.corrupted_reads == 1
        # Flag was observed before verification ever ran.
        assert s.detection.mismatches == 0

    def test_repeated_detection_accesses_emit_once(self):
        trace = ExecutionTrace()
        log = EventLog()
        s = ChecksumStore(trace=trace, event_log=log)
        s.write(ref(0), 3)
        s.corrupt_data(ref(0), bump)
        assert s.status_of(ref(0)) == "corrupted"
        assert not s.is_available(ref(0))
        assert s.status_of(ref(0)) == "corrupted"
        events = log.by_kind(EventKind.SDC_DETECTED)
        assert len(events) == 1
        assert trace.sdc_detected == 1
        assert events[0].data["block"] == "b"
        assert events[0].data["method"] == "checksum"

    def test_redetection_after_regeneration_counts_again(self):
        trace = ExecutionTrace()
        log = EventLog()
        s = ChecksumStore(trace=trace, event_log=log)
        s.write(ref(0), 3)
        s.corrupt_data(ref(0), bump)
        assert s.status_of(ref(0)) == "corrupted"
        s.write(ref(0), 3)  # regenerated
        s.corrupt_data(ref(0), bump)  # struck again
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))
        assert trace.sdc_detected == 2
        assert len(log.by_kind(EventKind.SDC_DETECTED)) == 2
