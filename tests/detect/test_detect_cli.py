"""The ``python -m repro detect`` entry point."""

from repro.detect.cli import main


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["--selftest", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "detect selftest passed" in out
        assert "FAIL" not in out

    def test_selftest_covers_apps_and_modes(self, capsys):
        assert main(["--selftest", "--count", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        for needle in ("lcs/inline checksum", "cholesky/threaded replication",
                       "lcs no detection -> escape"):
            assert needle in out


class TestDefaultRun:
    def test_tables_printed(self, capsys):
        assert main(["--apps", "lcs", "--reps", "1", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "checksum" in out
        assert "replicate:all" in out
