"""End-to-end silent-fault runs: detection on -> recovered correct result;
detection off -> the fault escapes and the result is wrong (ISSUE satellite)."""

import pytest

from repro.apps import make_app
from repro.core import CompositeHooks, FTScheduler
from repro.detect.checksum import ChecksumStore
from repro.detect.cli import plan_sink_fault
from repro.detect.replicate import ReplicationDetector
from repro.detect.report import account_escapes
from repro.detect.silent import SilentFaultInjector, plan_silent_faults
from repro.memory.allocator import KeepK
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventKind, EventLog
from repro.obs.replay import assert_consistent
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
from repro.runtime.tracing import ExecutionTrace

APPS = ("lcs", "cholesky")
RUNTIMES = ("inline", "simulated", "threaded")


def make_runtime(name):
    if name == "inline":
        return InlineRuntime()
    if name == "simulated":
        return SimulatedRuntime(workers=4, seed=7)
    return ThreadedRuntime(workers=4, seed=7)


def silent_run(app, store, detector, plan):
    trace = ExecutionTrace()
    log = EventLog()
    injector = SilentFaultInjector(plan, app, store, trace=trace)
    hooks = CompositeHooks(injector, detector) if detector else injector
    FTScheduler(
        app, make_runtime(silent_run.runtime), store=store,
        hooks=hooks, trace=trace, event_log=log,
    ).run()
    report = account_escapes(injector, log, trace)
    assert_consistent(log, trace)
    return report, trace, log


@pytest.fixture(params=RUNTIMES, autouse=True)
def _runtime(request):
    silent_run.runtime = request.param


@pytest.mark.parametrize("app_name", APPS)
class TestChecksumEndToEnd:
    def test_detects_recovers_and_result_matches(self, app_name):
        app = make_app(app_name, scale="tiny")
        store = ChecksumStore(app.ft_policy)
        app.seed_store(store)
        plan = plan_silent_faults(app, count=2, seed=13)
        report, trace, log = silent_run(app, store, detector=None, plan=plan)
        app.verify(store)  # recovered result equals the fault-free reference
        assert report.injected == 2
        assert report.detected == 2
        assert report.escaped == 0
        assert trace.total_recoveries >= 1
        assert len(log.by_kind(EventKind.SDC_DETECTED)) >= 2


@pytest.mark.parametrize("app_name", APPS)
class TestReplicationEndToEnd:
    def test_detects_recovers_and_result_matches(self, app_name):
        app = make_app(app_name, scale="tiny")
        # Widen single-buffer reuse so replicas can re-read inputs.
        policy = app.ft_policy if (app.ft_policy.keep or 2) >= 2 else KeepK(2)
        store = BlockStore(policy)
        app.seed_store(store)
        detector = ReplicationDetector(app, store)
        plan = plan_silent_faults(app, count=2, seed=13)
        report, trace, log = silent_run(app, store, detector, plan)
        app.verify(store)
        assert report.detected == report.injected == 2
        assert report.escaped == 0
        assert trace.replica_runs > 0


@pytest.mark.parametrize("app_name", APPS)
class TestDetectionOff:
    def test_sink_fault_escapes_and_result_is_wrong(self, app_name):
        if silent_run.runtime != "inline":
            pytest.skip("one escape demonstration per app is enough")
        app = make_app(app_name, scale="tiny")
        store = BlockStore(app.ft_policy)
        app.seed_store(store)
        report, trace, log = silent_run(
            app, store, detector=None, plan=plan_sink_fault(app))
        assert report.escaped > 0
        assert len(log.by_kind(EventKind.SDC_ESCAPED)) == report.escaped
        assert trace.sdc_detected == 0
        with pytest.raises(AssertionError):
            app.verify(store)
