"""Canonical encoding and fingerprinting."""

import numpy as np
import pytest

from repro.detect.digest import (
    DEFAULT_DIGEST,
    DIGESTS,
    canonical_bytes,
    digest_from_name,
    fingerprint,
)


class TestCanonicalBytes:
    def test_deterministic(self):
        v = {"a": (1, 2.5, "x"), "b": np.arange(6).reshape(2, 3)}
        assert canonical_bytes(v) == canonical_bytes(
            {"a": (1, 2.5, "x"), "b": np.arange(6).reshape(2, 3)}
        )

    @pytest.mark.parametrize(
        "a,b",
        [
            (1, 2),
            (1, 1.0),  # int vs float must not collide
            (1.0, "1.0"),
            ("ab", b"ab"),
            (True, 1),  # bool vs int must not collide
            ((1, 2), [1, 2]),  # tuple vs list
            (None, 0),
            ([1, 2], [2, 1]),
            ({"k": 1}, {"k": 2}),
        ],
    )
    def test_type_and_value_distinctions(self, a, b):
        assert canonical_bytes(a) != canonical_bytes(b)

    def test_ndarray_value_sensitivity(self):
        a = np.arange(8, dtype=np.float64)
        b = a.copy()
        b[3] += 1
        assert canonical_bytes(a) != canonical_bytes(b)

    def test_ndarray_dtype_and_shape_sensitivity(self):
        a = np.zeros(4, dtype=np.float64)
        assert canonical_bytes(a) != canonical_bytes(np.zeros(4, dtype=np.float32))
        assert canonical_bytes(a) != canonical_bytes(np.zeros((2, 2), dtype=np.float64))

    def test_nested_containers(self):
        v = [("x", {"n": np.ones(3)}), None, 7]
        w = [("x", {"n": np.ones(3)}), None, 8]
        assert canonical_bytes(v) != canonical_bytes(w)


class TestFingerprint:
    @pytest.mark.parametrize("name", sorted(DIGESTS))
    def test_all_digests_catch_a_flip(self, name):
        a = np.linspace(0.0, 1.0, 64)
        b = a.copy()
        b[17] += 1e-9
        assert fingerprint(a, name) == fingerprint(a.copy(), name)
        assert fingerprint(a, name) != fingerprint(b, name)

    def test_default_digest_registered(self):
        assert DEFAULT_DIGEST in DIGESTS

    def test_unknown_digest_rejected(self):
        with pytest.raises(ValueError, match="digest"):
            digest_from_name("md5ish")

    def test_callable_digest_passthrough(self):
        calls = []

        def mydigest(data: bytes) -> int:
            calls.append(len(data))
            return len(data)

        assert fingerprint((1, 2, 3), mydigest) == len(canonical_bytes((1, 2, 3)))
        assert calls
