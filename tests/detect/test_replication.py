"""ReplicationDetector: duplicate-and-compare, voting, and abstention."""

import pytest

from repro.core import CompositeHooks, FTScheduler
from repro.detect.policy import (
    ReplicateAll,
    ReplicateByCriticality,
    ReplicateNone,
    ReplicateSampled,
    policy_from_name,
)
from repro.detect.replicate import ReplicaContext, ReplicationDetector
from repro.detect.silent import SilentFaultInjector, plan_silent_faults
from repro.exceptions import SchedulerError
from repro.graph.builders import grid_graph
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import KeepK
from repro.memory.blockstore import BlockStore
from repro.obs.events import EventKind, EventLog
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


class TestPolicies:
    def test_all_and_none(self):
        assert ReplicateAll().should_replicate(None, "k", 1)
        assert not ReplicateNone().should_replicate(None, "k", 1)

    def test_criticality_by_out_degree(self):
        spec = grid_graph(4, 4)
        policy = ReplicateByCriticality(min_successors=2)
        # Interior nodes have two successors; the sink has none.
        assert policy.should_replicate(spec, (0, 0), 1)
        assert not policy.should_replicate(spec, (3, 3), 1)

    def test_sampled_deterministic_and_rate_bounded(self):
        spec = grid_graph(6, 6)
        policy = ReplicateSampled(rate=0.5, seed=3)
        picks = [policy.should_replicate(spec, (i, j), 1)
                 for i in range(6) for j in range(6)]
        again = [policy.should_replicate(spec, (i, j), 1)
                 for i in range(6) for j in range(6)]
        assert picks == again
        assert 0 < sum(picks) < len(picks)

    def test_sampled_rate_validated(self):
        with pytest.raises(ValueError):
            ReplicateSampled(rate=1.5)

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("all", ReplicateAll()),
            ("none", ReplicateNone()),
            ("sampled:0.25", ReplicateSampled(rate=0.25, seed=9)),
            ("critical:3", ReplicateByCriticality(min_successors=3)),
        ],
    )
    def test_policy_from_name(self, name, expected):
        assert policy_from_name(name, seed=9) == expected

    def test_policy_from_name_unknown(self):
        with pytest.raises(ValueError, match="policy"):
            policy_from_name("quorum")


class TestReplicaContext:
    def test_footprint_enforced(self):
        spec = grid_graph(3, 3)
        store = BlockStore()
        ctx = ReplicaContext(spec, store, (1, 1))
        with pytest.raises(SchedulerError, match="undeclared input"):
            ctx.read(BlockRef(("g", 9, 9), 0))
        with pytest.raises(SchedulerError, match="undeclared output"):
            ctx.write(BlockRef(("g", 9, 9), 0), 1)

    def test_writes_captured_not_published(self):
        spec = grid_graph(2, 2)
        store = BlockStore()
        out = BlockRef(*spec.outputs((0, 0))[0])
        ctx = ReplicaContext(spec, store, (0, 0))
        ctx.write(out, 42)
        assert ctx.written[out] == 42
        assert not store.is_available(out)


def run_with_detection(app_or_spec, store, detector, plan=None, runtime=None,
                       trace=None, log=None):
    trace = trace or ExecutionTrace()
    log = log or EventLog()
    injector = None
    hooks = detector
    if plan is not None:
        injector = SilentFaultInjector(plan, app_or_spec, store, trace=trace)
        hooks = CompositeHooks(injector, detector)
    FTScheduler(
        app_or_spec, runtime or InlineRuntime(), store=store,
        hooks=hooks, trace=trace, event_log=log,
    ).run()
    return injector, trace, log


class TestDetection:
    def test_votes_validated(self):
        with pytest.raises(ValueError, match="votes"):
            ReplicationDetector(grid_graph(2, 2), BlockStore(), votes=1)

    def test_clean_run_no_detections(self):
        spec = grid_graph(4, 4)
        store = BlockStore()
        detector = ReplicationDetector(spec, store)
        _, trace, log = run_with_detection(spec, store, detector)
        assert detector.detections == []
        assert trace.sdc_detected == 0
        assert trace.replica_runs > 0
        assert len(log.by_kind(EventKind.REPLICA_RUN)) == trace.replica_runs

    def test_detects_and_recovers_silent_fault(self):
        from repro.apps import make_app

        app = make_app("lcs", scale="tiny")
        store = BlockStore(app.ft_policy)
        app.seed_store(store)
        detector = ReplicationDetector(app, store)
        plan = plan_silent_faults(app, count=2, seed=1)
        injector, trace, log = run_with_detection(app, store, detector, plan=plan)
        app.verify(store)  # detected, condemned, recovered: result correct
        assert len(detector.detections) == 2
        assert {k for k, _, _ in detector.detections} == set(plan.keys())
        assert trace.sdc_detected == 2
        assert trace.total_recoveries >= 2

    def test_triple_vote_detects(self):
        from repro.apps import make_app

        app = make_app("lcs", scale="tiny")
        store = BlockStore(app.ft_policy)
        app.seed_store(store)
        detector = ReplicationDetector(app, store, votes=3)
        plan = plan_silent_faults(app, count=1, seed=4)
        _, trace, _ = run_with_detection(app, store, detector, plan=plan)
        app.verify(store)
        assert trace.sdc_detected == 1
        # Two replicas per verified task.
        assert trace.replica_runs >= 2 * trace.sdc_detected

    def test_policy_none_detects_nothing(self):
        from repro.apps import make_app
        from repro.detect.report import account_escapes

        app = make_app("lcs", scale="tiny")
        store = BlockStore(app.ft_policy)
        app.seed_store(store)
        detector = ReplicationDetector(app, store, policy=ReplicateNone())
        plan = plan_silent_faults(app, count=1, seed=4)
        injector, trace, log = run_with_detection(app, store, detector, plan=plan)
        assert trace.sdc_detected == 0
        assert trace.replica_runs == 0
        report = account_escapes(injector, log, trace)
        assert report.escaped == 1


class TestVoting:
    def detector(self, votes):
        return ReplicationDetector(grid_graph(2, 2), BlockStore(), votes=votes)

    def test_duplicate_agreement_trusts(self):
        assert self.detector(2)._published_wins("fp", ["fp"])

    def test_duplicate_disagreement_condemns(self):
        assert not self.detector(2)._published_wins("fp", ["other"])

    def test_triple_vote_majority_saves_published(self):
        # One replica corrupted, stored copy + other replica agree.
        assert self.detector(3)._published_wins("fp", ["fp", "bad"])

    def test_triple_vote_majority_condemns_published(self):
        assert not self.detector(3)._published_wins("bad", ["fp", "fp"])

    def test_no_majority_condemns(self):
        assert not self.detector(3)._published_wins("a", ["b", "c"])


class TestAbstention:
    """Regression: a replica that cannot re-read its inputs must abstain,
    not feed OverwrittenError into recovery (detection-induced livelock)."""

    def test_inplace_reuse_terminates_and_skips(self):
        from repro.apps import make_app

        # Cholesky under single-buffer reuse: every task overwrites its
        # own input, so after-compute replicas cannot re-read it.
        app = make_app("cholesky", scale="tiny")
        store = BlockStore(app.ft_policy)  # keep == 1
        app.seed_store(store)
        detector = ReplicationDetector(app, store)
        _, trace, _ = run_with_detection(
            app, store, detector, runtime=SimulatedRuntime(workers=4, seed=2))
        app.verify(store)
        assert detector.skipped > 0
        assert trace.total_recoveries == 0  # abstention caused no fault traffic

    def test_widened_ring_restores_coverage(self):
        from repro.apps import make_app

        app = make_app("cholesky", scale="tiny")
        store = BlockStore(KeepK(2))
        app.seed_store(store)
        detector = ReplicationDetector(app, store)
        plan = plan_silent_faults(app, count=2, seed=3)
        _, trace, _ = run_with_detection(
            app, store, detector, plan=plan,
            runtime=SimulatedRuntime(workers=4, seed=2))
        app.verify(store)
        assert trace.sdc_detected == 2
