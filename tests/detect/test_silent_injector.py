"""SilentFaultInjector and the silent-fault planner."""

import numpy as np
import pytest

from repro.core import FTScheduler
from repro.detect.silent import SilentFaultInjector, default_mutator, plan_silent_faults
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.obs.events import EventKind, EventLog
from repro.runtime import InlineRuntime
from repro.runtime.tracing import ExecutionTrace


class TestDefaultMutator:
    def test_numeric_array_perturbed(self):
        a = np.arange(4, dtype=np.float64)
        m = default_mutator(a)
        assert not np.array_equal(a, m)
        assert m.shape == a.shape

    def test_bool_array_inverted(self):
        a = np.array([True, False])
        np.testing.assert_array_equal(default_mutator(a), np.array([False, True]))

    def test_scalars_and_strings(self):
        assert default_mutator(5) == 6
        assert default_mutator(2.5) == 3.5
        assert default_mutator(True) is False
        assert default_mutator("abc") != "abc"
        assert default_mutator("") == "\x01"

    def test_containers_rebuilt(self):
        assert default_mutator((1, 2)) == (2, 3)
        assert default_mutator([1.0]) == [2.0]
        assert default_mutator({"k": 1}) == {"k": 2}

    def test_opaque_payload_wrapped(self):
        marker = default_mutator(object())
        assert isinstance(marker, tuple) and marker[0] == "sdc"

    def test_original_not_aliased(self):
        a = np.zeros(3)
        m = default_mutator(a)
        m[0] = 99.0
        assert a[0] == 0.0


class TestInjector:
    def test_before_compute_rejected(self):
        plan = FaultPlan.single("k", "before_compute")
        with pytest.raises(ValueError, match="before-compute"):
            SilentFaultInjector(plan, spec=None, store=None)

    def test_fires_silently_and_tracks_ground_truth(self):
        # LCS: integer payloads, so an escaped mutation cannot crash a
        # downstream kernel -- the run completes, silently wrong.
        from repro.apps import make_app

        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        app.seed_store(store)
        plan = plan_silent_faults(app, count=2, seed=5)
        trace = ExecutionTrace()
        log = EventLog()
        injector = SilentFaultInjector(plan, app, store, trace=trace, event_log=log)
        FTScheduler(
            app, InlineRuntime(), store=store, hooks=injector, trace=trace, event_log=log
        ).run()
        assert injector.all_fired()
        assert len(injector.fired) == 2
        assert trace.sdc_injected == 2
        assert len(log.by_kind(EventKind.SDC_INJECTED)) == 2
        assert store.stats.silent_corruptions >= 1
        assert store.stats.corruptions_marked == 0  # silent: no flags
        assert trace.total_recoveries == 0  # nothing detected, nothing recovered
        for event in injector.fired:
            assert event in injector.mutated

    def test_fires_once_per_event(self):
        plan = FaultPlan(
            events=[FaultEvent("k", FaultPhase.AFTER_COMPUTE)], implied_reexecutions=1
        )

        class OneTaskSpec:
            def outputs(self, key):
                return ()

        class Record:
            key = "k"
            life = 1

        injector = SilentFaultInjector(plan, OneTaskSpec(), store=None)
        injector.on_after_compute(Record())
        injector.on_after_compute(Record())
        assert len(injector.fired) == 1
        assert injector.all_fired()

    def test_wrong_life_does_not_fire(self):
        plan = FaultPlan(
            events=[FaultEvent("k", FaultPhase.AFTER_COMPUTE, life=2)],
            implied_reexecutions=1,
        )

        class Record:
            key = "k"
            life = 1

        injector = SilentFaultInjector(plan, spec=None, store=None)
        injector.on_after_compute(Record())
        assert not injector.fired
        assert injector.unfired == list(plan)


class TestPlanner:
    def test_defaults_are_post_compute_nonsink(self, tiny_app):
        plan = plan_silent_faults(tiny_app, count=2, seed=0)
        assert len(plan) == 2
        sink = tiny_app.sink_key()
        for event in plan:
            assert event.phase is FaultPhase.AFTER_COMPUTE
            assert not event.corrupt_descriptor
            assert event.corrupt_outputs
            assert event.key != sink

    def test_before_compute_rejected(self, tiny_app):
        with pytest.raises(ValueError, match="post-compute"):
            plan_silent_faults(tiny_app, phase="before_compute")

    def test_oversized_count_rejected(self, tiny_app):
        with pytest.raises(ValueError, match="victims"):
            plan_silent_faults(tiny_app, count=10**9)

    def test_deterministic_for_seed(self, tiny_app):
        a = plan_silent_faults(tiny_app, count=3, seed=11)
        b = plan_silent_faults(tiny_app, count=3, seed=11)
        assert a.keys() == b.keys()
