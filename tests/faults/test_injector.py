"""Unit tests for the run-time fault injector."""

import pytest

from repro.core.records import TaskRecord
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.builders import grid_graph
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime.tracing import ExecutionTrace


def make_injector(events, spec=None, store=None, trace=None):
    spec = spec or grid_graph(4, 4)
    store = store if store is not None else BlockStore()
    plan = FaultPlan(events=events, implied_reexecutions=len(events))
    return FaultInjector(plan, spec, store, trace), store


class TestFiring:
    def test_fires_on_matching_phase_and_life(self):
        inj, _ = make_injector([FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)])
        rec = TaskRecord((1, 1), 3)
        inj.on_after_compute(rec)
        assert rec.corrupted
        assert inj.all_fired()

    def test_ignores_other_phases(self):
        inj, _ = make_injector([FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)])
        rec = TaskRecord((1, 1), 3)
        inj.on_task_waiting(rec)
        inj.on_after_notify(rec)
        assert not rec.corrupted
        assert not inj.all_fired()

    def test_ignores_other_keys(self):
        inj, _ = make_injector([FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)])
        rec = TaskRecord((2, 2), 3)
        inj.on_after_compute(rec)
        assert not rec.corrupted

    def test_fires_once_only(self):
        inj, _ = make_injector([FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)])
        rec1 = TaskRecord((1, 1), 3, life=1)
        inj.on_after_compute(rec1)
        rec2 = TaskRecord((1, 1), 3, life=1)
        inj.on_after_compute(rec2)
        assert rec1.corrupted and not rec2.corrupted

    def test_life_matching(self):
        inj, _ = make_injector([FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE, life=2)])
        first = TaskRecord((1, 1), 3, life=1)
        inj.on_after_compute(first)
        assert not first.corrupted
        second = TaskRecord((1, 1), 3, life=2)
        inj.on_after_compute(second)
        assert second.corrupted

    def test_multiple_lives_fire_in_order(self):
        inj, _ = make_injector([
            FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE, life=1),
            FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE, life=2),
        ])
        r1 = TaskRecord((1, 1), 3, life=1)
        r2 = TaskRecord((1, 1), 3, life=2)
        inj.on_after_compute(r1)
        inj.on_after_compute(r2)
        assert r1.corrupted and r2.corrupted
        assert inj.all_fired()


class TestDataCorruption:
    def test_outputs_marked(self):
        spec = grid_graph(4, 4)
        store = BlockStore()
        store.write(BlockRef((1, 1), 0), "data")
        inj, _ = make_injector(
            [FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)], spec=spec, store=store
        )
        inj.on_after_compute(TaskRecord((1, 1), 3))
        assert store.status_of(BlockRef((1, 1), 0)) == "corrupted"

    def test_descriptor_only_event(self):
        spec = grid_graph(4, 4)
        store = BlockStore()
        store.write(BlockRef((1, 1), 0), "data")
        inj, _ = make_injector(
            [FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE, corrupt_outputs=False)],
            spec=spec, store=store,
        )
        rec = TaskRecord((1, 1), 3)
        inj.on_after_compute(rec)
        assert rec.corrupted
        assert store.status_of(BlockRef((1, 1), 0)) == "ok"

    def test_trace_counts_injections(self):
        trace = ExecutionTrace()
        inj, _ = make_injector(
            [FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)], trace=trace
        )
        inj.on_after_compute(TaskRecord((1, 1), 3))
        assert trace.faults_injected == 1


class TestBookkeeping:
    def test_unfired_lists_pending(self):
        inj, _ = make_injector([
            FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE),
            FaultEvent((2, 2), FaultPhase.BEFORE_COMPUTE),
        ])
        inj.on_after_compute(TaskRecord((1, 1), 3))
        pending = inj.unfired
        assert len(pending) == 1
        assert pending[0].key == (2, 2)

    def test_fired_log(self):
        inj, _ = make_injector([FaultEvent((1, 1), FaultPhase.AFTER_COMPUTE)])
        inj.on_after_compute(TaskRecord((1, 1), 3))
        assert [e.key for e in inj.fired] == [(1, 1)]
