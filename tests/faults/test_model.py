"""Unit tests for the fault model types."""

import pytest

from repro.faults.model import FaultEvent, FaultPhase, FaultPlan


class TestPhase:
    @pytest.mark.parametrize(
        "name,phase",
        [
            ("before_compute", FaultPhase.BEFORE_COMPUTE),
            ("AFTER_COMPUTE", FaultPhase.AFTER_COMPUTE),
            ("  after_notify ", FaultPhase.AFTER_NOTIFY),
        ],
    )
    def test_from_name(self, name, phase):
        assert FaultPhase.from_name(name) is phase

    def test_from_phase_identity(self):
        assert FaultPhase.from_name(FaultPhase.AFTER_COMPUTE) is FaultPhase.AFTER_COMPUTE

    def test_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown fault phase"):
            FaultPhase.from_name("during_lunch")


class TestEvent:
    def test_defaults(self):
        e = FaultEvent("k", FaultPhase.AFTER_COMPUTE)
        assert e.life == 1
        assert e.corrupt_descriptor and e.corrupt_outputs

    def test_life_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultEvent("k", FaultPhase.AFTER_COMPUTE, life=0)

    def test_must_corrupt_something(self):
        with pytest.raises(ValueError):
            FaultEvent("k", FaultPhase.AFTER_COMPUTE,
                       corrupt_descriptor=False, corrupt_outputs=False)

    def test_frozen(self):
        e = FaultEvent("k", FaultPhase.AFTER_COMPUTE)
        with pytest.raises(Exception):
            e.life = 5


class TestPlan:
    def test_iteration_and_len(self):
        events = [FaultEvent(i, FaultPhase.AFTER_COMPUTE) for i in range(3)]
        plan = FaultPlan(events=events, implied_reexecutions=3)
        assert len(plan) == 3
        assert list(plan) == events
        assert plan.keys() == [0, 1, 2]

    def test_single(self):
        plan = FaultPlan.single("k", "after_notify", life=2)
        assert len(plan) == 1
        assert plan.events[0].phase is FaultPhase.AFTER_NOTIFY
        assert plan.events[0].life == 2
        assert plan.implied_reexecutions == 1

    def test_duplicate_key_phase_life_rejected(self):
        events = [
            FaultEvent("k", FaultPhase.AFTER_COMPUTE),
            FaultEvent("k", FaultPhase.AFTER_COMPUTE),
        ]
        with pytest.raises(ValueError, match="duplicate fault event"):
            FaultPlan(events=events, implied_reexecutions=2)

    def test_same_key_distinct_phase_or_life_allowed(self):
        events = [
            FaultEvent("k", FaultPhase.AFTER_COMPUTE),
            FaultEvent("k", FaultPhase.AFTER_NOTIFY),
            FaultEvent("k", FaultPhase.AFTER_COMPUTE, life=2),
        ]
        plan = FaultPlan(events=events, implied_reexecutions=3)
        assert len(plan) == 3


class TestPlanSerialization:
    def test_round_trip(self):
        import json

        from repro.faults.model import plan_from_dict, plan_to_dict

        plan = FaultPlan(
            events=[
                FaultEvent(("gemm", 1, 2, 3), FaultPhase.AFTER_NOTIFY, life=2),
                FaultEvent("simple", FaultPhase.BEFORE_COMPUTE, corrupt_outputs=False),
                FaultEvent(7, FaultPhase.AFTER_COMPUTE, corrupt_descriptor=True),
            ],
            implied_reexecutions=9,
            task_type="v=last",
        )
        back = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert back.events == plan.events
        assert back.implied_reexecutions == 9
        assert back.task_type == "v=last"

    def test_defaults_on_sparse_dict(self):
        from repro.faults.model import plan_from_dict

        back = plan_from_dict({"events": [{"key": "a", "phase": "after_compute"}]})
        assert back.events[0].life == 1
        assert back.events[0].corrupt_outputs

    def test_loaded_plan_drives_injection(self):
        import json

        from repro.faults.injector import FaultInjector
        from repro.faults.model import plan_from_dict, plan_to_dict
        from repro.core import FTScheduler
        from repro.graph.builders import grid_graph
        from repro.memory.blockstore import BlockStore
        from repro.runtime import InlineRuntime
        from repro.runtime.tracing import ExecutionTrace

        spec = grid_graph(4, 4)
        plan = plan_from_dict(json.loads(json.dumps(
            plan_to_dict(FaultPlan.single((1, 1), "after_compute"))
        )))
        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(plan, spec, store, trace)
        FTScheduler(spec, InlineRuntime(), store=store, hooks=injector, trace=trace).run()
        assert injector.all_fired()
        assert trace.recoveries[(1, 1)] == 1
