"""Unit tests for fault planning."""

import pytest

from repro.apps import make_app
from repro.faults.model import FaultPhase
from repro.faults.planner import plan_faults, plan_recursive_faults, resolve_target
from repro.faults.selectors import VersionIndex
from repro.graph.builders import grid_graph


@pytest.fixture(scope="module")
def grid_index():
    return VersionIndex(grid_graph(8, 8))


class TestResolveTarget:
    def test_count(self, grid_index):
        assert resolve_target(grid_index, count=5) == 5

    def test_fraction(self, grid_index):
        assert resolve_target(grid_index, fraction=0.25) == 16

    def test_fraction_rounds_to_at_least_one(self, grid_index):
        assert resolve_target(grid_index, fraction=0.001) == 1

    def test_exactly_one_of(self, grid_index):
        with pytest.raises(ValueError):
            resolve_target(grid_index)
        with pytest.raises(ValueError):
            resolve_target(grid_index, count=1, fraction=0.1)

    def test_bad_values(self, grid_index):
        with pytest.raises(ValueError):
            resolve_target(grid_index, count=0)
        with pytest.raises(ValueError):
            resolve_target(grid_index, fraction=1.5)


class TestPlanFaults:
    def test_meets_target(self):
        spec = grid_graph(8, 8)
        plan = plan_faults(spec, phase="after_compute", count=10, seed=0)
        assert plan.implied_reexecutions >= 10
        assert len(plan) == 10  # single-assignment: one per victim

    def test_deterministic_by_seed(self):
        spec = grid_graph(8, 8)
        a = plan_faults(spec, phase="after_compute", count=7, seed=5)
        b = plan_faults(spec, phase="after_compute", count=7, seed=5)
        assert a.keys() == b.keys()

    def test_different_seeds_differ(self):
        spec = grid_graph(8, 8)
        a = plan_faults(spec, phase="after_compute", count=7, seed=1)
        b = plan_faults(spec, phase="after_compute", count=7, seed=2)
        assert a.keys() != b.keys()

    def test_before_compute_does_not_corrupt_outputs(self):
        spec = grid_graph(6, 6)
        plan = plan_faults(spec, phase="before_compute", count=3, seed=0)
        assert all(not e.corrupt_outputs for e in plan)

    def test_after_compute_corrupts_outputs(self):
        spec = grid_graph(6, 6)
        plan = plan_faults(spec, phase="after_compute", count=3, seed=0)
        assert all(e.corrupt_outputs for e in plan)

    def test_chain_sizing_for_after_notify(self):
        app = make_app("fw", scale="tiny", light=True)
        index = VersionIndex(app)
        plan = plan_faults(app, phase="after_notify", task_type="v=last",
                           count=6, seed=0, index=index)
        # Each v=last victim implies a chain of B re-executions.
        B = app.config.blocks
        assert plan.implied_reexecutions >= 6
        assert len(plan) < 6  # fewer victims than target: chains count

    def test_victim_sizing_for_after_compute(self):
        app = make_app("fw", scale="tiny", light=True)
        plan = plan_faults(app, phase="after_compute", task_type="v=last", count=6, seed=0)
        assert len(plan) == 6  # one implied re-execution per victim

    def test_pool_exhaustion(self):
        spec = grid_graph(3, 3)
        with pytest.raises(ValueError, match="pool exhausted"):
            plan_faults(spec, phase="after_compute", count=100, seed=0)

    def test_sink_never_chosen(self):
        spec = grid_graph(4, 4)
        plan = plan_faults(spec, phase="after_compute", count=14, seed=0)
        assert (3, 3) not in plan.keys()

    def test_fraction_interface(self):
        spec = grid_graph(8, 8)
        plan = plan_faults(spec, phase="after_compute", fraction=0.05, seed=0)
        assert plan.implied_reexecutions >= 3


class TestRecursivePlans:
    def test_lives_ascend(self):
        spec = grid_graph(4, 4)
        plan = plan_recursive_faults(spec, (1, 1), depth=4)
        assert [e.life for e in plan] == [1, 2, 3, 4]
        assert all(e.key == (1, 1) for e in plan)

    def test_phase_configurable(self):
        spec = grid_graph(4, 4)
        plan = plan_recursive_faults(spec, (1, 1), phase="before_compute", depth=2)
        assert all(e.phase is FaultPhase.BEFORE_COMPUTE for e in plan)
