"""Tests for the online probabilistic injector."""

import pytest

from repro.core import FTScheduler, run_scheduler
from repro.faults.random_injector import RandomInjector
from repro.graph.builders import grid_graph, random_dag
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_random(spec, seed=0, workers=4, steal_seed=0, **rates):
    store = BlockStore()
    trace = ExecutionTrace()
    injector = RandomInjector(spec, store, seed=seed, trace=trace, **rates)
    sched = FTScheduler(
        spec, SimulatedRuntime(workers=workers, seed=steal_seed),
        store=store, hooks=injector, trace=trace,
    )
    return sched.run(), injector, store


class TestRates:
    def test_zero_rate_is_fault_free(self):
        spec = grid_graph(5, 5)
        res, injector, _ = run_random(spec, rate=0.0)
        assert not injector.fired
        assert res.trace.reexecutions == 0

    def test_invalid_rate_rejected(self):
        spec = grid_graph(3, 3)
        with pytest.raises(ValueError):
            RandomInjector(spec, BlockStore(), rate=1.5)

    def test_per_phase_rates_override_base(self):
        spec = grid_graph(5, 5)
        _, injector, _ = run_random(spec, rate=0.0, after_compute=0.3, seed=2)
        assert injector.fired
        assert all(phase.value == "after_compute" for _, _, phase in injector.fired)

    def test_rate_scales_fault_count(self):
        spec = grid_graph(6, 6)
        _, low, _ = run_random(spec, after_compute=0.05, seed=1)
        _, high, _ = run_random(spec, after_compute=0.5, seed=1)
        assert len(high.fired) > len(low.fired)


class TestDeterminism:
    def test_same_seed_same_victims(self):
        spec = grid_graph(5, 5)
        _, a, _ = run_random(spec, after_compute=0.3, seed=9)
        _, b, _ = run_random(spec, after_compute=0.3, seed=9)
        assert a.fired == b.fired

    def test_different_seed_different_victims(self):
        spec = grid_graph(5, 5)
        _, a, _ = run_random(spec, after_compute=0.3, seed=1)
        _, b, _ = run_random(spec, after_compute=0.3, seed=2)
        assert a.fired != b.fired


class TestCorrectnessUnderRandomFaults:
    @pytest.mark.parametrize("seed", range(4))
    def test_results_unchanged(self, seed):
        spec = grid_graph(6, 6)
        expected = run_scheduler(spec).store.peek(BlockRef((5, 5), 0))
        res, injector, store = run_random(
            spec, rate=0.1, seed=seed, steal_seed=seed
        )
        assert store.peek(BlockRef((5, 5), 0)) == expected

    def test_recovery_can_be_struck_again(self):
        # High rate: incarnations beyond life 1 get hit too (Guarantee 6
        # under load) -- completion must still hold.
        spec = grid_graph(4, 4)
        expected = run_scheduler(spec).store.peek(BlockRef((3, 3), 0))
        res, injector, store = run_random(spec, after_compute=0.6, seed=3)
        assert store.peek(BlockRef((3, 3), 0)) == expected
        assert any(life > 1 for _, life, _ in injector.fired)

    def test_random_dags(self):
        for seed in range(3):
            spec = random_dag(25, edge_prob=0.25, seed=seed)
            expected = run_scheduler(spec).store.peek(BlockRef(spec.sink_key(), 0))
            _, _, store = run_random(spec, rate=0.15, seed=seed)
            assert store.peek(BlockRef(spec.sink_key(), 0)) == expected


class TestCap:
    def test_max_faults_bounds_firing(self):
        spec = grid_graph(6, 6)
        _, injector, _ = run_random(spec, after_compute=0.9, seed=1, max_faults=3)
        assert len(injector.fired) == 3
