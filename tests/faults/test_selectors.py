"""Unit tests for version-based victim classification."""

import pytest

from repro.apps import make_app
from repro.faults.selectors import (
    TASK_TYPES,
    V0,
    VLAST,
    VRAND,
    VersionIndex,
    normalize_task_type,
    sample_victims,
)
from repro.graph.builders import grid_graph


class TestNormalize:
    @pytest.mark.parametrize(
        "alias,canon",
        [("v=0", V0), ("v0", V0), ("first", V0), ("V=LAST", VLAST), ("last", VLAST),
         ("rand", VRAND), ("random", VRAND), ("v=rand", VRAND)],
    )
    def test_aliases(self, alias, canon):
        assert normalize_task_type(alias) == canon

    def test_unknown(self):
        with pytest.raises(ValueError):
            normalize_task_type("v=7")


class TestSingleAssignmentGraph:
    def test_every_task_is_both_v0_and_vlast(self):
        # LCS-like: one version per block (the paper's Table II remark).
        idx = VersionIndex(grid_graph(4, 4))
        counts = idx.type_counts()
        assert counts[V0] == counts[VLAST] == counts[VRAND] == 15  # sink excluded

    def test_sink_excluded_by_default(self):
        idx = VersionIndex(grid_graph(4, 4))
        assert (3, 3) not in idx.pool(VRAND)
        assert (3, 3) in idx.pool(VRAND, exclude_sink=False)

    def test_sources_excludable(self):
        idx = VersionIndex(grid_graph(4, 4))
        assert (0, 0) not in idx.pool(VRAND, exclude_sources=True)


class TestVersionedApps:
    def test_fw_version_structure(self):
        app = make_app("fw", scale="tiny", light=True)
        idx = VersionIndex(app)
        B = app.config.blocks
        # v=0 producers are the step-0 tasks; v=last the step-(B-1) tasks.
        assert all(k[0] == 0 for k in idx.pool(V0))
        assert all(k[0] == B - 1 for k in idx.pool(VLAST))
        assert len(idx.pool(V0)) == B * B
        assert len(idx.pool(VLAST)) == B * B

    def test_fw_first_version_accounts_for_pinned_inputs(self):
        app = make_app("fw", scale="tiny", light=True)
        idx = VersionIndex(app)
        # Blocks get task-produced versions 1..B; version 0 is pinned input.
        assert idx.first_version(("d", 0, 0)) == 1
        assert idx.last_version(("d", 0, 0)) == app.config.blocks

    def test_lu_classification(self):
        app = make_app("lu", scale="tiny", light=True)
        idx = VersionIndex(app)
        assert ("getrf", 0) in idx.pool(V0)
        B = app.config.blocks
        # Final-version producers include all factor-stage tasks.
        assert ("trsmr", 0, B - 1) in idx.pool(VLAST)
        # getrf(0) produces both the first and last version of (0,0).
        assert ("getrf", 0) in idx.pool(VLAST)

    def test_implied_chain_model(self):
        app = make_app("fw", scale="tiny", light=True)
        idx = VersionIndex(app)
        B = app.config.blocks
        key = (B - 1, 1, 2)
        # Before-compute loses nothing.
        assert idx.implied_reexecutions(key, "before_compute", 2) == 1
        # Immediate detection with two retained versions: just the victim
        # (the paper's rationale for two-version FW).
        assert idx.implied_reexecutions(key, "after_compute", 2) == 1
        # ... but with a single buffer the victim destroyed its own input:
        # the whole chain replays.
        assert idx.implied_reexecutions(key, "after_compute", 1) == B
        # Delayed detection implies the chain under any bounded keep.
        assert idx.implied_reexecutions(key, "after_notify", 2) == B
        assert idx.implied_reexecutions((0, 1, 2), "after_notify", 2) == 1
        # Single assignment never evicts: always 1.
        assert idx.implied_reexecutions(key, "after_notify", None) == 1

    def test_self_chained_classification(self):
        fw = make_app("fw", scale="tiny", light=True)
        assert VersionIndex(fw).self_chained((2, 1, 2))
        sw = make_app("sw", scale="tiny", light=True)
        idx = VersionIndex(sw)
        # SW tasks read neighbouring blocks, never their own block's
        # previous version.
        assert not idx.self_chained((3, 2))
        lu = make_app("lu", scale="tiny", light=True)
        assert VersionIndex(lu).self_chained(("gemm", 1, 3, 4))

    def test_primary_output_and_npreds(self):
        app = make_app("cholesky", scale="tiny", light=True)
        idx = VersionIndex(app)
        ref = idx.primary_output(("potrf", 0))
        assert ref.block == ("a", 0, 0)
        assert ref.version == 1
        assert idx.n_preds(("potrf", 0)) == 0


class TestSampling:
    def test_sample_without_replacement(self):
        import random

        pool = list(range(100))
        got = sample_victims(pool, random.Random(1), count=10)
        assert len(got) == len(set(got)) == 10

    def test_sample_whole_pool(self):
        import random

        pool = list(range(10))
        got = sample_victims(pool, random.Random(1))
        assert sorted(got) == pool

    def test_deterministic_by_seed(self):
        import random

        pool = list(range(50))
        a = sample_victims(pool, random.Random(3), count=5)
        b = sample_victims(pool, random.Random(3), count=5)
        assert a == b
