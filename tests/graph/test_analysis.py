"""Unit tests for graph analytics (Table I quantities, work/span)."""

import pytest

from repro.graph.analysis import (
    collect_tasks,
    critical_path_length,
    graph_stats,
    topological_order,
    work_and_span,
)
from repro.graph.builders import chain_graph, diamond_graph, fork_join_graph, grid_graph


class TestCollectAndTopo:
    def test_collect_reaches_all(self):
        assert len(collect_tasks(grid_graph(3, 5))) == 15

    def test_topological_order_respects_edges(self):
        g = grid_graph(4, 4)
        order = topological_order(g)
        pos = {k: i for i, k in enumerate(order)}
        for k in order:
            for p in g.predecessors(k):
                assert pos[p] < pos[k]

    def test_topo_on_chain_is_the_chain(self):
        assert topological_order(chain_graph(6)) == list(range(6))


class TestCriticalPath:
    def test_chain(self):
        assert critical_path_length(chain_graph(10)) == 9

    def test_diamond(self):
        assert critical_path_length(diamond_graph()) == 2

    def test_grid_wavefront(self):
        # Longest path alternates right/down: 2*(n-1) edges.
        assert critical_path_length(grid_graph(5, 5)) == 8

    def test_weighted(self):
        g = chain_graph(4, cost=lambda k: float(k + 1))
        assert critical_path_length(g, weight=g.cost) == 1 + 2 + 3 + 4


class TestGraphStats:
    def test_chain_stats(self):
        st = graph_stats(chain_graph(8))
        assert st.tasks == 8
        assert st.edges == 7
        assert st.critical_path == 7
        assert st.max_in_degree == 1
        assert st.max_out_degree == 1
        assert st.sources == 1
        assert st.total_cost == 8.0
        assert st.span_cost == 8.0
        assert st.average_parallelism == 1.0

    def test_diamond_stats(self):
        st = graph_stats(diamond_graph(width=3))
        assert st.tasks == 5
        assert st.edges == 6
        assert st.max_in_degree == 3
        assert st.max_out_degree == 3
        assert st.max_degree == 6

    def test_grid_edge_count_closed_form(self):
        n = 6
        st = graph_stats(grid_graph(n, n))
        expected = 2 * n * (n - 1) + (n - 1) ** 2
        assert st.edges == expected

    def test_fork_join(self):
        st = graph_stats(fork_join_graph(levels=3, fanout=4))
        # 3 forks of 4 + 3 joins + the initial join(-1) node
        assert st.tasks == 3 * 4 + 3 + 1
        assert st.max_out_degree == 4
        assert st.max_in_degree == 4


class TestWorkAndSpan:
    def test_fault_free_chain(self):
        g = chain_graph(5)
        t1, tinf = work_and_span(g)
        # T1 charges cost + |out| per task: 5 * 1 + 4 notification edges.
        assert t1 == 5 + 4
        assert tinf == 5.0

    def test_reexecution_increases_work_linearly(self):
        g = chain_graph(5)
        t1a, _ = work_and_span(g)
        t1b, _ = work_and_span(g, {2: 3})  # task 2 runs 3 times
        assert t1b == t1a + 2 * (1 + 1)  # two extra (cost + out-degree)

    def test_reexecution_on_critical_path_increases_span(self):
        g = chain_graph(5)
        _, sa = work_and_span(g)
        _, sb = work_and_span(g, {2: 4})
        assert sb == sa + 3  # three extra serial executions of cost 1

    def test_reexecution_off_critical_path_may_not_increase_span(self):
        g = diamond_graph(width=2)
        _, sa = work_and_span(g)
        _, sb = work_and_span(g, {("mid", 0): 2})
        # Span path can route through the other middle task... but N on a
        # path member counts serially, so span grows only on that path.
        assert sb == sa + 1  # the heavier branch becomes the span path
