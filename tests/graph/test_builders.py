"""Unit tests for synthetic graph builders."""

import pytest

from repro.graph.builders import (
    chain_graph,
    diamond_graph,
    fork_join_graph,
    grid_graph,
    random_dag,
)
from repro.graph.validate import validate_spec


class TestChain:
    def test_lengths(self):
        for n in (1, 2, 7):
            assert validate_spec(chain_graph(n)) == n

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain_graph(0)


class TestDiamond:
    def test_width(self):
        g = diamond_graph(width=5)
        assert validate_spec(g) == 7
        assert len(g.predecessors("sink")) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            diamond_graph(width=0)


class TestForkJoin:
    def test_structure(self):
        g = fork_join_graph(levels=2, fanout=3)
        assert validate_spec(g) == 2 * 3 + 2 + 1
        assert g.sink_key() == ("join", 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            fork_join_graph(0, 1)


class TestGrid:
    def test_with_diagonal(self):
        g = grid_graph(3, 3)
        assert validate_spec(g) == 9
        assert set(g.predecessors((1, 1))) == {(0, 1), (1, 0), (0, 0)}

    def test_without_diagonal(self):
        g = grid_graph(3, 3, diagonal=False)
        assert set(g.predecessors((1, 1))) == {(0, 1), (1, 0)}

    def test_single_cell(self):
        assert validate_spec(grid_graph(1, 1)) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestRandomDag:
    def test_valid_for_various_sizes(self):
        for n in (1, 2, 10, 40):
            g = random_dag(n, edge_prob=0.3, seed=n)
            assert validate_spec(g) == len(g)

    def test_deterministic_by_seed(self):
        a = random_dag(25, edge_prob=0.25, seed=9)
        b = random_dag(25, edge_prob=0.25, seed=9)
        assert a.vertices() == b.vertices()
        assert all(a.predecessors(v) == b.predecessors(v) for v in a.vertices())

    def test_different_seeds_differ(self):
        a = random_dag(25, edge_prob=0.25, seed=1)
        b = random_dag(25, edge_prob=0.25, seed=2)
        assert any(a.predecessors(v) != b.predecessors(v) for v in range(25))

    def test_max_in_degree_respected(self):
        g = random_dag(40, edge_prob=0.9, seed=3, max_in_degree=2)
        assert all(len(g.predecessors(v)) <= 2 for v in range(40))

    def test_sink_depends_on_all_natural_sinks(self):
        g = random_dag(15, edge_prob=0.0, seed=0)
        # No internal edges: every vertex feeds the virtual sink.
        assert len(g.predecessors("__sink__")) == 15
