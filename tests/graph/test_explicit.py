"""Unit tests for explicit (materialized) task graphs."""

import networkx as nx
import pytest

from repro.graph.explicit import ExplicitTaskGraph


class TestConstruction:
    def test_simple_chain(self):
        g = ExplicitTaskGraph([(0, 1), (1, 2)])
        assert g.sink_key() == 2
        assert g.predecessors(2) == (1,)
        assert g.successors(0) == (1,)
        assert len(g) == 3

    def test_sink_inferred_unique(self):
        g = ExplicitTaskGraph([("a", "c"), ("b", "c")])
        assert g.sink_key() == "c"

    def test_ambiguous_sink_rejected(self):
        with pytest.raises(ValueError, match="unique sink"):
            ExplicitTaskGraph([("a", "b"), ("a", "c")])

    def test_explicit_sink_must_be_vertex(self):
        with pytest.raises(ValueError, match="not a vertex"):
            ExplicitTaskGraph([("a", "b")], sink="z")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            ExplicitTaskGraph([("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate edge"):
            ExplicitTaskGraph([("a", "b"), ("a", "b")])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="no vertices"):
            ExplicitTaskGraph([])

    def test_single_vertex(self):
        g = ExplicitTaskGraph([], sink="only", vertices=["only"])
        assert g.sink_key() == "only"
        assert g.predecessors("only") == ()

    def test_edge_order_preserved(self):
        g = ExplicitTaskGraph([("b", "d"), ("a", "d"), ("c", "d")], sink="d")
        assert g.predecessors("d") == ("b", "a", "c")


class TestAlternateConstructors:
    def test_from_predecessor_map(self):
        g = ExplicitTaskGraph.from_predecessor_map({"a": [], "b": ["a"], "c": ["a", "b"]})
        assert g.sink_key() == "c"
        assert g.predecessors("c") == ("a", "b")

    def test_from_networkx(self):
        dg = nx.DiGraph([(1, 2), (2, 3), (1, 3)])
        g = ExplicitTaskGraph.from_networkx(dg)
        assert g.sink_key() == 3
        assert set(g.predecessors(3)) == {1, 2}

    def test_with_virtual_sink(self):
        g = ExplicitTaskGraph.with_virtual_sink([("a", "b"), ("a", "c")])
        assert g.sink_key() == "__sink__"
        assert set(g.predecessors("__sink__")) == {"b", "c"}

    def test_virtual_sink_key_collision_rejected(self):
        with pytest.raises(ValueError, match="already used"):
            ExplicitTaskGraph.with_virtual_sink([("a", "__sink__")])


class TestSpecSurface:
    def test_contains(self):
        g = ExplicitTaskGraph([("a", "b")])
        assert "a" in g
        assert "z" not in g

    def test_vertices(self):
        g = ExplicitTaskGraph([("a", "b")])
        assert set(g.vertices()) == {"a", "b"}

    def test_custom_cost(self):
        g = ExplicitTaskGraph([("a", "b")], cost=lambda k: 5.0 if k == "a" else 1.0)
        assert g.cost("a") == 5.0
        assert g.cost("b") == 1.0

    def test_producer_is_block(self):
        from repro.graph.taskspec import BlockRef

        g = ExplicitTaskGraph([("a", "b")])
        assert g.producer(BlockRef("a", 0)) == "a"

    def test_default_compute_builds_deterministic_tuples(self):
        from repro.core import run_scheduler
        from repro.graph.taskspec import BlockRef

        g = ExplicitTaskGraph([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], sink="d")
        r1 = run_scheduler(g)
        r2 = run_scheduler(g)
        v1 = r1.store.peek(BlockRef("d", 0))
        v2 = r2.store.peek(BlockRef("d", 0))
        assert v1 == v2
        assert v1[0] == "d"
