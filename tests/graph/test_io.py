"""Tests for task-graph JSON (de)serialization."""

import json

import pytest

from repro.apps import make_app
from repro.core import run_scheduler
from repro.graph.analysis import graph_stats
from repro.graph.builders import diamond_graph, grid_graph, random_dag
from repro.graph.io import load_graph, save_graph, spec_from_dict, spec_to_dict
from repro.graph.taskspec import BlockRef
from repro.graph.validate import validate_spec


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [diamond_graph(width=3), grid_graph(4, 4), random_dag(25, 0.2, seed=1)],
        ids=["diamond", "grid", "random"],
    )
    def test_structure_preserved(self, spec):
        back = spec_from_dict(spec_to_dict(spec))
        assert back.sink_key() == spec.sink_key()
        assert set(back.vertices()) == set(spec.walk_from_sink())
        for k in back.vertices():
            assert tuple(back.predecessors(k)) == tuple(spec.predecessors(k))
        validate_spec(back)

    def test_costs_preserved(self):
        spec = grid_graph(3, 3, cost=lambda k: float(k[0] + 2 * k[1] + 1))
        back = spec_from_dict(spec_to_dict(spec))
        for k in back.vertices():
            assert back.cost(k) == spec.cost(k)

    def test_app_structure_round_trips(self):
        app = make_app("lu", scale="tiny", light=True)
        back = spec_from_dict(spec_to_dict(app))
        assert graph_stats(back).tasks == graph_stats(app).tasks
        assert graph_stats(back).edges == graph_stats(app).edges

    def test_nested_tuple_keys(self):
        app = make_app("cholesky", scale="tiny", light=True)
        data = json.loads(json.dumps(spec_to_dict(app)))  # full JSON trip
        back = spec_from_dict(data)
        assert back.sink_key() == app.sink_key()


class TestFiles:
    def test_save_and_load(self, tmp_path):
        spec = grid_graph(4, 4)
        path = tmp_path / "grid.json"
        save_graph(spec, path)
        back = load_graph(path)
        assert set(back.vertices()) == set(spec.vertices())

    def test_loaded_graph_is_runnable(self, tmp_path):
        spec = grid_graph(4, 4)
        path = tmp_path / "g.json"
        save_graph(spec, path)
        back = load_graph(path)
        res = run_scheduler(back)  # default deterministic compute
        assert res.trace.total_computes == 16
        # Same structure + same default compute => same sink value.
        ref = run_scheduler(spec)
        assert res.store.peek(BlockRef((3, 3), 0)) == ref.store.peek(BlockRef((3, 3), 0))

    def test_custom_compute_attached_on_load(self, tmp_path):
        spec = grid_graph(3, 3)
        path = tmp_path / "g.json"
        save_graph(spec, path)
        seen = []
        back = load_graph(
            path,
            compute=lambda k, ctx: (seen.append(k), ctx.write(BlockRef(k, 0), k)),
        )
        run_scheduler(back)
        assert len(seen) == 9


class TestErrors:
    def test_unsupported_key_type(self):
        from repro.graph.io import _encode_key

        with pytest.raises(TypeError):
            _encode_key(frozenset({1}))
        with pytest.raises(TypeError):
            _encode_key(None)
        with pytest.raises(TypeError):
            _encode_key(True)  # bools shadow ints and would not round-trip

    def test_bad_format_version(self):
        with pytest.raises(ValueError, match="format"):
            spec_from_dict({"format": 99, "sink": "s", "tasks": []})
