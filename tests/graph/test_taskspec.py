"""Unit tests for the task-graph specification protocol."""

import pytest

from repro.graph.taskspec import BlockRef, CallableSpec, TaskGraphSpec, TaskSpecBase


def diamond_spec():
    preds = {"a": [], "b": ["a"], "c": ["a"], "d": ["b", "c"]}
    succs = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
    return CallableSpec(
        sink="d",
        preds=lambda k: preds[k],
        succs=lambda k: succs[k],
        compute=lambda k, ctx: ctx.write(BlockRef(k, 0), k.upper()),
    )


class TestBlockRef:
    def test_is_named_tuple(self):
        ref = BlockRef("blk", 3)
        assert ref.block == "blk"
        assert ref.version == 3
        assert tuple(ref) == ("blk", 3)

    def test_equality_with_plain_tuple(self):
        assert BlockRef("x", 0) == ("x", 0)

    def test_hashable_dict_key(self):
        d = {BlockRef("x", 1): "v"}
        assert d[BlockRef("x", 1)] == "v"


class TestCallableSpec:
    def test_satisfies_protocol(self):
        assert isinstance(diamond_spec(), TaskGraphSpec)

    def test_sink(self):
        assert diamond_spec().sink_key() == "d"

    def test_preds_and_succs(self):
        s = diamond_spec()
        assert s.predecessors("d") == ("b", "c")
        assert s.successors("a") == ("b", "c")

    def test_default_cost_is_one(self):
        assert diamond_spec().cost("a") == 1.0

    def test_custom_cost(self):
        s = CallableSpec("d", lambda k: [], lambda k: [], lambda k, c: None, cost=lambda k: 7.0)
        assert s.cost("anything") == 7.0


class TestTaskSpecBaseDefaults:
    def test_default_inputs_mirror_predecessors(self):
        s = diamond_spec()
        assert tuple(s.inputs("d")) == (BlockRef("b", 0), BlockRef("c", 0))

    def test_default_outputs_are_own_key(self):
        s = diamond_spec()
        assert tuple(s.outputs("b")) == (BlockRef("b", 0),)

    def test_default_producer_is_block_id(self):
        s = diamond_spec()
        assert s.producer(BlockRef("b", 0)) == "b"

    def test_pred_index_positions(self):
        s = diamond_spec()
        assert s.pred_index("d", "b") == 0
        assert s.pred_index("d", "c") == 1

    def test_pred_index_self_is_extra_slot(self):
        s = diamond_spec()
        assert s.pred_index("d", "d") == 2
        assert s.pred_index("a", "a") == 0

    def test_pred_index_unknown_raises(self):
        with pytest.raises(KeyError):
            diamond_spec().pred_index("d", "a")

    def test_walk_from_sink_reaches_everything(self):
        assert set(diamond_spec().walk_from_sink()) == {"a", "b", "c", "d"}

    def test_walk_from_sink_starts_at_sink(self):
        assert next(iter(diamond_spec().walk_from_sink())) == "d"

    def test_abstract_methods_raise(self):
        base = TaskSpecBase()
        with pytest.raises(NotImplementedError):
            base.sink_key()
        with pytest.raises(NotImplementedError):
            base.predecessors("x")
        with pytest.raises(NotImplementedError):
            base.successors("x")
        with pytest.raises(NotImplementedError):
            base.compute("x", None)
