"""Unit tests for structural validation."""

import pytest

from repro.graph.builders import diamond_graph, grid_graph
from repro.graph.explicit import ExplicitTaskGraph
from repro.graph.taskspec import CallableSpec
from repro.graph.validate import GraphValidationError, validate_spec


def spec_from(preds, succs, sink, cost=None):
    return CallableSpec(
        sink=sink,
        preds=lambda k: preds.get(k, []),
        succs=lambda k: succs.get(k, []),
        compute=lambda k, ctx: None,
        cost=cost,
    )


class TestAccepts:
    def test_diamond(self):
        assert validate_spec(diamond_graph()) == 4

    def test_grid(self):
        assert validate_spec(grid_graph(4, 4)) == 16

    def test_returns_reachable_count_only(self):
        # "z" exists but is unreachable from the sink.
        g = ExplicitTaskGraph([("a", "b"), ("z", "y")], sink="b")
        assert validate_spec(g) == 2


class TestRejects:
    def test_sink_with_successors(self):
        s = spec_from({"a": [], "b": ["a"]}, {"a": ["b"], "b": ["a"]}, "b")
        with pytest.raises(GraphValidationError, match="sink .* has successors"):
            validate_spec(s)

    def test_cycle(self):
        preds = {"a": ["b"], "b": ["a"], "c": ["a", "b"]}
        succs = {"a": ["b", "c"], "b": ["a", "c"], "c": []}
        with pytest.raises(GraphValidationError, match="cycle"):
            validate_spec(spec_from(preds, succs, "c"))

    def test_inconsistent_adjacency_missing_succ(self):
        preds = {"a": [], "b": ["a"]}
        succs = {"a": [], "b": []}  # a should list b
        with pytest.raises(GraphValidationError, match="inconsistent adjacency"):
            validate_spec(spec_from(preds, succs, "b"))

    def test_inconsistent_adjacency_missing_pred(self):
        # Reachable task "a" claims successor "c", but "c" does not list
        # "a" as a predecessor.
        preds = {"a": [], "b": ["a"], "c": []}
        succs = {"a": ["b", "c"], "b": [], "c": []}
        with pytest.raises(GraphValidationError, match="inconsistent adjacency"):
            validate_spec(spec_from(preds, succs, "b"))

    def test_duplicate_predecessors(self):
        preds = {"a": [], "b": ["a", "a"]}
        succs = {"a": ["b"], "b": []}
        with pytest.raises(GraphValidationError, match="duplicate"):
            validate_spec(spec_from(preds, succs, "b"))

    def test_self_predecessor(self):
        preds = {"b": ["b"]}
        succs = {"b": []}
        with pytest.raises(GraphValidationError):
            validate_spec(spec_from(preds, succs, "b"))

    def test_nonpositive_cost(self):
        s = spec_from({"a": [], "b": ["a"]}, {"a": ["b"], "b": []}, "b", cost=lambda k: 0.0)
        with pytest.raises(GraphValidationError, match="cost"):
            validate_spec(s)

    def test_nan_cost(self):
        s = spec_from({"a": [], "b": ["a"]}, {"a": ["b"], "b": []}, "b",
                      cost=lambda k: float("nan"))
        with pytest.raises(GraphValidationError, match="cost"):
            validate_spec(s)

    def test_max_tasks_guard(self):
        # Unbounded backward chain: key n depends on n+1 forever.
        s = CallableSpec(
            sink=0,
            preds=lambda k: [k + 1],
            succs=lambda k: [k - 1] if k > 0 else [],
            compute=lambda k, ctx: None,
        )
        with pytest.raises(GraphValidationError, match="max_tasks"):
            validate_spec(s, max_tasks=100)
