"""Smoke tests for the ``python -m repro.harness`` CLI."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_table1_quick(self, capsys):
        assert main(["--quick", "--only", "table1", "--apps", "lcs"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "lcs" in out

    def test_fig5a_single_app(self, capsys):
        assert main(["--quick", "--only", "fig5a", "--apps", "lcs", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "before_compute" in out

    def test_table2_and_fig6_share_runs(self, capsys):
        assert main([
            "--quick", "--only", "table2", "--only", "fig6",
            "--apps", "lcs", "--reps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Figure 6" in out

    def test_experiment_names_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig4", "fig5a", "fig5b", "table2", "fig6", "fig7a", "fig7b",
            "detect", "verify",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])
