"""Tests for the per-table/figure drivers (tiny scale, minimal reps)."""

import pytest

from repro.harness.figure4 import figure4, format_figure4
from repro.harness.figure5 import figure5a, figure5b, format_figure5
from repro.harness.figure7 import figure7, format_figure7
from repro.harness.report import pm, render_table
from repro.harness.table1 import PAPER_TABLE1, format_table1, table1
from repro.harness.table2 import after_notify_study, format_figure6, format_table2

APPS = ("lcs", "fw")  # one single-assignment + one versioned app


class TestTable1:
    def test_tiny_scale_rows(self):
        rows = table1(APPS, scale="tiny")
        assert [r.app for r in rows] == list(APPS)
        assert all(r.tasks > 0 and r.edges > 0 for r in rows)
        out = format_table1(rows)
        assert "Table I" in out

    def test_lcs_paper_scale_matches_paper_exactly(self):
        (row,) = table1(("lcs",), scale="paper")
        assert row.tasks == row.paper_tasks == 65536
        assert row.edges == row.paper_edges == 195585
        assert row.s_edges == 510

    def test_paper_reference_values_recorded(self):
        assert set(PAPER_TABLE1) == {"lcs", "sw", "fw", "lu", "cholesky"}


class TestFigure4:
    def test_speedup_series_shape(self):
        series = figure4(APPS, workers=(1, 2, 4), reps=1, scale="tiny")
        assert len(series) == len(APPS) * 2
        for s in series:
            assert s.speedup(1) == pytest.approx(1.0)
            assert s.speedup(4) > 1.2  # some parallelism even at tiny scale

    def test_ft_overhead_small_except_fw(self):
        series = figure4(APPS, workers=(1,), reps=1, scale="tiny")
        seq = {(s.app, s.variant): s.sequential_time for s in series}
        lcs_gap = seq[("lcs", "ft")] / seq[("lcs", "baseline")]
        fw_gap = seq[("fw", "ft")] / seq[("fw", "baseline")]
        assert lcs_gap < 1.02
        assert 1.05 < fw_gap < 1.15  # the two-version memory penalty

    def test_format(self):
        series = figure4(("lcs",), workers=(1, 2), reps=1, scale="tiny")
        out = format_figure4(series)
        assert "Figure 4" in out and "sequential overhead" in out


class TestFigure5:
    def test_5a_shape(self):
        cells = figure5a(("lcs",), reps=2, scale="tiny")
        assert len(cells) == 6  # 3 task types x 2 phases
        before = [c for c in cells if c.phase == "before_compute"]
        after = [c for c in cells if c.phase == "after_compute"]
        assert all(c.reexecutions.mean == 0 for c in before)
        assert all(c.reexecutions.mean >= 1 for c in after)
        assert all(c.overhead.mean < 0.5 for c in before)

    def test_5b_shape(self):
        cells = figure5b(("lcs",), fractions=(0.25,), reps=2, scale="tiny")
        assert len(cells) == 2
        after = next(c for c in cells if c.phase == "after_compute")
        # 25% of tasks lost sequentially -> ~25% overhead.
        assert 10.0 < after.overhead.mean < 45.0

    def test_format(self):
        out = format_figure5(figure5a(("lcs",), reps=1, scale="tiny"), "t")
        assert "overhead %" in out


class TestTable2AndFigure6:
    def test_study_covers_types_and_fractions(self):
        cells = after_notify_study(("fw",), fractions=(0.05,), reps=2, scale="tiny")
        assert len(cells) == 4  # 3 types + one fraction
        t2 = format_table2(cells)
        f6 = format_figure6(cells)
        assert "Table II" in t2 and "Figure 6" in f6

    def test_vlast_cascades_damped_by_two_version(self):
        cells = after_notify_study(("fw",), fractions=(), reps=2, scale="tiny")
        by_type = {c.task_type: c for c in cells}
        # v=last implied counts include full chains; actual is damped.
        assert by_type["v=last"].reexecutions.mean < by_type["v=last"].implied


class TestFigure7:
    def test_panel_a(self):
        series = figure7(("lcs",), paper_loss=512, workers=(1, 4), reps=2, scale="tiny")
        (s,) = series
        assert set(s.overhead) == {1, 4}
        out = format_figure7(series, "t")
        assert "P=4" in out

    def test_requires_exactly_one_amount(self):
        with pytest.raises(ValueError):
            figure7(("lcs",), paper_loss=None, fraction=None)
        with pytest.raises(ValueError):
            figure7(("lcs",), paper_loss=512, fraction=0.05)


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["x", 1.5], ["yy", 22.25]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_pm(self):
        assert pm(1.234, 0.5) == "1.23 ± 0.50"


class TestVerification:
    def test_study_rows_and_mutations(self):
        from repro.harness.verification import format_verification, verification_study

        study = verification_study(("lcs",), seeds=2, perturbations=1, branch_budget=4)
        assert len(study["rows"]) == 3  # one per fault phase
        for row in study["rows"]:
            assert row.app == "lcs"
            assert row.violations == 0
            assert row.errors == 0
            assert row.exercised["recov"] > 0
        assert all(m["detected"] for m in study["mutations"].values())
        out = format_verification(study)
        assert "before_compute" in out
        assert "double_recovery" in out
