"""Tests for the experiment execution layer."""

import pytest

from repro.apps import make_app
from repro.faults.planner import plan_faults
from repro.harness.experiment import execute, makespans


@pytest.fixture(scope="module")
def lcs_tiny():
    return make_app("lcs", scale="tiny", light=True)


class TestExecute:
    def test_fault_free(self, lcs_tiny):
        out = execute(lcs_tiny)
        assert out.makespan > 0
        assert out.reexecutions == 0
        assert out.injector is None

    def test_with_plan(self, lcs_tiny):
        plan = plan_faults(lcs_tiny, phase="after_compute", count=2, seed=0)
        out = execute(lcs_tiny, plan=plan)
        assert out.reexecutions == 2
        assert out.injector.all_fired()

    def test_plan_requires_ft(self, lcs_tiny):
        plan = plan_faults(lcs_tiny, phase="after_compute", count=1, seed=0)
        with pytest.raises(ValueError):
            execute(lcs_tiny, fault_tolerant=False, plan=plan)

    def test_verify_full_mode(self):
        app = make_app("lcs", scale="tiny")
        execute(app, verify=True)

    def test_deterministic(self, lcs_tiny):
        a = execute(lcs_tiny, workers=4, steal_seed=9).makespan
        b = execute(lcs_tiny, workers=4, steal_seed=9).makespan
        assert a == b


class TestMakespans:
    def test_serial_runs_once_and_replicates(self, lcs_tiny):
        ms = makespans(lcs_tiny, reps=4, workers=1)
        assert len(ms) == 4
        assert len(set(ms)) == 1

    def test_parallel_varies_with_seed(self, lcs_tiny):
        ms = makespans(lcs_tiny, reps=4, workers=4)
        assert len(ms) == 4
        assert len(set(ms)) > 1

    def test_baseline_variant(self, lcs_tiny):
        ms = makespans(lcs_tiny, reps=2, fault_tolerant=False, workers=2)
        assert all(m > 0 for m in ms)
