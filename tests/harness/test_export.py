"""Tests for JSON result export and the observability exporters."""

import json

from repro.analysis.stats import Summary, summarize
from repro.harness.export import (
    events_to_trace_events,
    results_to_dict,
    write_chrome_trace,
    write_events_jsonl,
    write_results,
)
from repro.obs.events import Event, EventKind


class TestJsonify:
    def test_summary_flattened(self):
        d = results_to_dict({"x": summarize([1.0, 2.0, 3.0])})
        assert d["x"]["mean"] == 2.0
        assert d["x"]["n"] == 3

    def test_dataclass_rows(self):
        from repro.harness.table1 import table1

        rows = table1(("lcs",), scale="tiny")
        d = results_to_dict({"table1": rows})
        assert d["table1"][0]["app"] == "lcs"
        assert isinstance(d["table1"][0]["tasks"], int)

    def test_nested_series_with_summaries(self):
        from repro.harness.figure4 import figure4

        series = figure4(("lcs",), workers=(1, 2), reps=1, scale="tiny")
        d = results_to_dict({"figure4": series})
        assert d["figure4"][0]["variant"] in ("baseline", "ft")
        assert "mean" in d["figure4"][0]["times"]["1"]

    def test_unserializable_values_become_repr(self):
        d = results_to_dict({"x": object()})
        assert d["x"].startswith("<object")

    def test_everything_json_dumps(self, tmp_path):
        from repro.harness.figure5 import figure5a

        cells = figure5a(("lcs",), reps=1, scale="tiny")
        path = tmp_path / "r.json"
        write_results({"figure5a": cells}, path)
        loaded = json.loads(path.read_text())
        assert loaded["figure5a"][0]["phase"] in ("before_compute", "after_compute")


def _sample_events():
    return [
        Event(0, 0.0, 0, EventKind.TASK_CREATED, key="a", life=1),
        Event(1, 1.0, 0, EventKind.COMPUTE_BEGIN, key="a", life=1),
        Event(2, 3.0, 0, EventKind.COMPUTE_END, key="a", life=1),
        Event(3, 3.5, 1, EventKind.STEAL, data={"victim": 0, "depth": 2}),
        Event(4, 4.0, 1, EventKind.COMPUTE_BEGIN, key="b", life=2),
        Event(5, 5.0, 1, EventKind.COMPUTE_FAULT, key="b", life=2,
              data={"exc": "TaskCorruptionError", "source": "b"}),
        Event(6, 5.5, 1, EventKind.RECOVERY, key="b", life=3),
    ]


class TestChromeTrace:
    def test_workers_become_lanes(self):
        te = events_to_trace_events(_sample_events())
        names = [e for e in te if e["ph"] == "M"]
        assert {e["tid"] for e in names} == {0, 1}
        assert names[0]["args"]["name"] == "worker 0"

    def test_compute_pairs_become_slices(self):
        te = events_to_trace_events(_sample_events())
        slices = {e["name"]: e for e in te if e["ph"] == "X"}
        assert "'a'" in slices
        a = slices["'a'"]
        assert a["ts"] == 1.0 * 1e6 and a["dur"] == 2.0 * 1e6 and a["tid"] == 0
        # The faulted incarnation is a slice too, named with its life.
        assert "'b' #2" in slices
        assert slices["'b' #2"]["args"]["fault"] == "TaskCorruptionError"

    def test_instants_carry_key_and_life(self):
        te = events_to_trace_events(_sample_events())
        rec = next(e for e in te if e["ph"] == "i" and e["name"] == "recovery")
        assert rec["args"] == {"key": "b", "life": 3}
        assert rec["cat"] == "recovery"
        steal = next(e for e in te if e["name"] == "steal")
        assert steal["cat"] == "runtime"
        assert steal["args"]["victim"] == 0

    def test_unterminated_compute_marked(self):
        events = [Event(0, 1.0, 0, EventKind.COMPUTE_BEGIN, key="x", life=1)]
        te = events_to_trace_events(events)
        assert any(e["name"] == "compute_unterminated" for e in te)

    def test_write_chrome_trace_loads(self, tmp_path):
        path = tmp_path / "t.json"
        write_chrome_trace(_sample_events(), path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc and doc["traceEvents"]

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_events_jsonl(_sample_events(), path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(_sample_events())
        assert records[6]["kind"] == "recovery"
        assert records[6]["life"] == 3

    def test_write_jsonl_empty(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_events_jsonl([], path)
        assert path.read_text() == ""
