"""Tests for JSON result export."""

import json

from repro.analysis.stats import Summary, summarize
from repro.harness.export import results_to_dict, write_results


class TestJsonify:
    def test_summary_flattened(self):
        d = results_to_dict({"x": summarize([1.0, 2.0, 3.0])})
        assert d["x"]["mean"] == 2.0
        assert d["x"]["n"] == 3

    def test_dataclass_rows(self):
        from repro.harness.table1 import table1

        rows = table1(("lcs",), scale="tiny")
        d = results_to_dict({"table1": rows})
        assert d["table1"][0]["app"] == "lcs"
        assert isinstance(d["table1"][0]["tasks"], int)

    def test_nested_series_with_summaries(self):
        from repro.harness.figure4 import figure4

        series = figure4(("lcs",), workers=(1, 2), reps=1, scale="tiny")
        d = results_to_dict({"figure4": series})
        assert d["figure4"][0]["variant"] in ("baseline", "ft")
        assert "mean" in d["figure4"][0]["times"]["1"]

    def test_unserializable_values_become_repr(self):
        d = results_to_dict({"x": object()})
        assert d["x"].startswith("<object")

    def test_everything_json_dumps(self, tmp_path):
        from repro.harness.figure5 import figure5a

        cells = figure5a(("lcs",), reps=1, scale="tiny")
        path = tmp_path / "r.json"
        write_results({"figure5a": cells}, path)
        loaded = json.loads(path.read_text())
        assert loaded["figure5a"][0]["phase"] in ("before_compute", "after_compute")
