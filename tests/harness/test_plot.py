"""Tests for the ASCII chart renderers."""

import pytest

from repro.harness.plot import bar_chart, figure4_chart, figure7_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart({"a": [(1, 1.0), (2, 2.0), (4, 4.0)]}, title="t")
        assert out.startswith("t")
        assert "legend: o a" in out
        assert "o" in out

    def test_multiple_series_distinct_marks(self):
        out = line_chart({"a": [(1, 1)], "b": [(1, 2)]})
        assert "o a" in out and "x b" in out

    def test_extremes_on_grid(self):
        out = line_chart({"s": [(0, 0.0), (10, 100.0)]}, height=8, width=20)
        lines = [l for l in out.splitlines() if "|" in l]
        assert "o" in lines[0]            # max lands on the top row
        assert "o" in lines[-1]           # min on the bottom row

    def test_axis_labels(self):
        out = line_chart({"s": [(1, 5), (44, 9)]}, y_label="spd", x_label="P")
        assert "spd" in out
        assert "P" in out
        assert "44" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_flat_series_no_crash(self):
        line_chart({"s": [(1, 3.0), (2, 3.0)]})


class TestBarChart:
    def test_positive_bars(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, unit="%")
        assert "1.00%" in out and "2.00%" in out
        a_line = next(l for l in out.splitlines() if l.startswith("a"))
        b_line = next(l for l in out.splitlines() if l.startswith("b"))
        assert b_line.count("#") > a_line.count("#")

    def test_negative_values_render(self):
        out = bar_chart({"neg": -1.0, "pos": 2.0})
        assert "-1.00" in out

    def test_zero_value(self):
        out = bar_chart({"z": 0.0, "p": 1.0})
        assert "0.00" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestFigureCharts:
    def test_figure4_chart(self):
        from repro.harness.figure4 import figure4

        series = figure4(("lcs",), workers=(1, 4), reps=1, scale="tiny")
        out = figure4_chart(series)
        assert "Figure 4" in out
        assert "lcs/ft" in out

    def test_figure7_chart(self):
        from repro.harness.figure7 import figure7

        series = figure7(("lcs",), paper_loss=512, workers=(1, 4), reps=1, scale="tiny")
        out = figure7_chart(series, "F7")
        assert "F7" in out

    def test_figure5_chart(self):
        from repro.harness.figure5 import figure5a
        from repro.harness.plot import figure5_chart

        cells = figure5a(("lcs",), reps=1, scale="tiny")
        out = figure5_chart(cells, "F5")
        assert "F5" in out and "#" in out


class TestGanttChart:
    def _timeline(self):
        from repro.runtime import SimulatedRuntime
        from repro.core import FTScheduler
        from repro.graph.builders import grid_graph

        spec = grid_graph(4, 4)
        rt = SimulatedRuntime(workers=3, seed=1, record_timeline=True)
        FTScheduler(spec, rt).run()
        return rt.timeline

    def test_renders_every_worker_row(self):
        from repro.harness.plot import gantt_chart

        out = gantt_chart(self._timeline(), title="G")
        assert out.startswith("G")
        for w in ("w0", "w1", "w2"):
            assert w in out

    def test_compute_columns_marked(self):
        from repro.harness.plot import gantt_chart

        out = gantt_chart(self._timeline())
        assert "c" in out

    def test_empty_timeline_rejected(self):
        import pytest
        from repro.harness.plot import gantt_chart

        with pytest.raises(ValueError):
            gantt_chart([])
