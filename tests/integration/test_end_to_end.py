"""End-to-end integration: every benchmark, every fault phase, verified
against the independent numerical reference."""

import pytest

from repro.apps import APP_NAMES, make_app
from repro.core import FTScheduler
from repro.faults.injector import FaultInjector
from repro.faults.planner import plan_faults
from repro.faults.selectors import TASK_TYPES, VersionIndex
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_injected(app, plan, workers=3, seed=0):
    store = app.make_store(True)
    trace = ExecutionTrace()
    injector = FaultInjector(plan, app, store, trace)
    sched = FTScheduler(
        app, SimulatedRuntime(workers=workers, seed=seed), store=store,
        hooks=injector, trace=trace,
    )
    result = sched.run()
    return result, store, injector


class TestFaultsDoNotChangeResults:
    @pytest.mark.parametrize("name", APP_NAMES)
    @pytest.mark.parametrize("phase", ["before_compute", "after_compute", "after_notify"])
    def test_phase_injection_verifies(self, name, phase):
        app = make_app(name, scale="tiny")
        plan = plan_faults(app, phase=phase, task_type="v=rand", count=3, seed=17)
        result, store, injector = run_injected(app, plan)
        assert injector.all_fired()
        app.verify(store)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_vlast_after_notify_cascades_verify(self, name):
        """The hardest scenario: delayed detection on last-version tasks,
        cascading through reused buffers."""
        app = make_app(name, scale="tiny")
        index = VersionIndex(app)
        plan = plan_faults(app, phase="after_notify", task_type="v=last",
                           count=2, seed=5, index=index)
        result, store, injector = run_injected(app, plan, workers=4, seed=3)
        app.verify(store)

    @pytest.mark.parametrize("name", APP_NAMES)
    @pytest.mark.parametrize("task_type", TASK_TYPES)
    def test_task_types_after_compute_verify(self, name, task_type):
        app = make_app(name, scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type=task_type, count=2, seed=2)
        _, store, _ = run_injected(app, plan, workers=2, seed=8)
        app.verify(store)


class TestCascadeAccounting:
    def test_sw_reuse_cascade_reexecutes_chain(self):
        """A late-detected fault on a v=last SW task forces recomputation
        of evicted boundary versions -- actual > 1 per victim."""
        app = make_app("sw", scale="tiny")
        index = VersionIndex(app)
        plan = plan_faults(app, phase="after_notify", task_type="v=last",
                           count=1, seed=1, index=index)
        result, store, _ = run_injected(app, plan, workers=1)
        app.verify(store)
        assert result.trace.reexecutions >= 1

    def test_fw_two_version_damps_cascades(self):
        """With two resident versions, recovering a last-step FW task does
        not need to replay the whole version chain (the paper's rationale
        for doubling FW's memory)."""
        app = make_app("fw", scale="tiny")
        index = VersionIndex(app)
        plan = plan_faults(app, phase="after_compute", task_type="v=last",
                           count=2, seed=1, index=index)
        result, store, _ = run_injected(app, plan, workers=1)
        app.verify(store)
        B = app.config.blocks
        assert result.trace.reexecutions < 2 * B  # no full chains


class TestRepeatedSeeds:
    @pytest.mark.parametrize("seed", range(5))
    def test_lu_heavy_faults_many_schedules(self, seed):
        app = make_app("lu", scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                           fraction=0.2, seed=seed)
        _, store, _ = run_injected(app, plan, workers=5, seed=seed)
        app.verify(store)
