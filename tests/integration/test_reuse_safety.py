"""Regression tests: memory reuse is *safe* under fault-free execution.

The paper requires that "the dependences specified ensure that all uses
of a data block causally precede a subsequent definition" (Section II).
If an app's anti-dependence edges were wrong, a fault-free run on the
baseline scheduler would hit an OverwrittenError (and crash -- baseline
has no recovery) under some schedule.  These tests hammer the reuse apps
across worker counts and steal seeds.
"""

import pytest

from repro.apps import make_app
from repro.core import NabbitScheduler
from repro.runtime import SimulatedRuntime, ThreadedRuntime


class TestBaselineReuseNeverTrips:
    @pytest.mark.parametrize("name", ["sw", "fw", "lu", "cholesky"])
    @pytest.mark.parametrize("workers", [2, 7, 16])
    def test_simulated_schedules(self, name, workers):
        for seed in range(4):
            app = make_app(name, scale="tiny", light=True)
            store = app.make_store(False)  # baseline policy (reuse / keep=1)
            NabbitScheduler(
                app, SimulatedRuntime(workers=workers, seed=seed), store=store
            ).run()
            # No OverwrittenError means every read found its version.
            assert store.stats.overwritten_reads == 0
            assert store.stats.corrupted_reads == 0

    @pytest.mark.parametrize("name", ["sw", "fw"])
    def test_threaded_schedules(self, name):
        for seed in range(3):
            app = make_app(name, scale="tiny", light=True)
            store = app.make_store(False)
            NabbitScheduler(
                app, ThreadedRuntime(workers=6, seed=seed), store=store
            ).run()
            assert store.stats.overwritten_reads == 0


class TestAntiEdgesAreLoadBearing:
    def test_sw_without_anti_edges_would_be_unsafe(self):
        """Drop SW's anti-dependence edge and show reuse genuinely
        breaks under some schedule -- proving the edge is load-bearing,
        not decorative."""
        from repro.exceptions import FaultError
        from repro.apps.base import ordered_preds

        broken_runs = 0
        for seed in range(12):
            app = make_app("sw", scale="tiny", light=True)
            B = app.config.blocks

            def preds_no_anti(key):
                i, j = key
                return ordered_preds(
                    (i > 0, (i - 1, j)),
                    (j > 0, (i, j - 1)),
                    (i > 0 and j > 0, (i - 1, j - 1)),
                )

            def succs_no_anti(key):
                i, j = key
                return ordered_preds(
                    (i + 1 < B, (i + 1, j)),
                    (j + 1 < B, (i, j + 1)),
                    (i + 1 < B and j + 1 < B, (i + 1, j + 1)),
                )

            app.predecessors = preds_no_anti
            app.successors = succs_no_anti
            # inputs are derived from predecessors; restrict to data deps.
            app.inputs = lambda key: tuple(
                app.block_of(p) for p in preds_no_anti(key)
            )
            store = app.make_store(False)
            try:
                NabbitScheduler(
                    app, SimulatedRuntime(workers=6, seed=seed), store=store
                ).run()
            except FaultError:
                broken_runs += 1
                continue
            if store.stats.overwritten_reads:
                broken_runs += 1
        assert broken_runs > 0, (
            "expected at least one schedule to trip on unsafe reuse "
            "without the anti-dependence edges"
        )
