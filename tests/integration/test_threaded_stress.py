"""Stress the FT scheduler under real thread interleavings.

The GIL serializes Python bytecode but *not* scheduling decisions: lock
acquisition order, steal order, and notification interleavings are
genuinely nondeterministic here, so these tests sweep seeds and repeat to
shake out races in the join-counter / bit-vector / recovery protocol.
"""

import pytest

from repro.apps import make_app
from repro.core import FTScheduler, run_scheduler
from repro.faults.injector import FaultInjector
from repro.faults.planner import plan_faults
from repro.graph.builders import grid_graph, random_dag
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime import ThreadedRuntime
from repro.runtime.tracing import ExecutionTrace


class TestNoFaultThreaded:
    @pytest.mark.parametrize("rep", range(3))
    def test_random_dag_repeated(self, rep):
        spec = random_dag(50, edge_prob=0.2, seed=rep)
        expected = run_scheduler(spec).store.peek(BlockRef(spec.sink_key(), 0))
        res = run_scheduler(spec, runtime=ThreadedRuntime(workers=6, seed=rep))
        assert res.store.peek(BlockRef(spec.sink_key(), 0)) == expected
        assert res.trace.max_executions == 1


class TestFaultsThreaded:
    @pytest.mark.parametrize("rep", range(4))
    def test_grid_with_faults(self, rep):
        spec = grid_graph(6, 6)
        expected = run_scheduler(spec).store.peek(BlockRef(spec.sink_key(), 0))
        plan = plan_faults(spec, phase="after_compute", task_type="v=rand",
                           count=5, seed=rep)
        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(plan, spec, store, trace)
        sched = FTScheduler(
            spec, ThreadedRuntime(workers=6, seed=100 + rep),
            store=store, hooks=injector, trace=trace,
        )
        sched.run()
        assert store.peek(BlockRef(spec.sink_key(), 0)) == expected

    @pytest.mark.parametrize("phase", ["before_compute", "after_compute", "after_notify"])
    def test_app_with_faults_threaded(self, phase):
        app = make_app("lu", scale="tiny")
        plan = plan_faults(app, phase=phase, task_type="v=rand", count=3, seed=7)
        store = app.make_store(True)
        trace = ExecutionTrace()
        injector = FaultInjector(plan, app, store, trace)
        sched = FTScheduler(
            app, ThreadedRuntime(workers=4, seed=9), store=store,
            hooks=injector, trace=trace,
        )
        sched.run()
        app.verify(store)

    def test_concurrent_recovery_dedup(self):
        # High-fanout victim: many threads observe the same failure.
        from repro.graph.builders import diamond_graph

        spec = diamond_graph(width=24)
        from repro.faults.model import FaultPlan

        for rep in range(5):
            plan = FaultPlan.single("src", "after_compute")
            store = BlockStore()
            trace = ExecutionTrace()
            injector = FaultInjector(plan, spec, store, trace)
            sched = FTScheduler(
                spec, ThreadedRuntime(workers=8, seed=rep), store=store,
                hooks=injector, trace=trace,
            )
            sched.run()
            assert trace.recoveries["src"] == 1


class TestAllAppsAllPhasesThreaded:
    """The full grid: every benchmark x every fault phase on real threads,
    each run verified against the numerical reference."""

    @pytest.mark.parametrize("name", ["lcs", "sw", "fw", "cholesky"])
    @pytest.mark.parametrize("phase", ["before_compute", "after_compute", "after_notify"])
    def test_app_phase_grid(self, name, phase):
        app = make_app(name, scale="tiny")
        plan = plan_faults(app, phase=phase, task_type="v=rand", count=2, seed=11)
        store = app.make_store(True)
        trace = ExecutionTrace()
        injector = FaultInjector(plan, app, store, trace)
        FTScheduler(
            app, ThreadedRuntime(workers=5, seed=13), store=store,
            hooks=injector, trace=trace,
        ).run()
        app.verify(store)
