"""Unit tests for allocation/retention policies."""

import pytest

from repro.memory.allocator import (
    AllocationPolicy,
    KeepK,
    Reuse,
    SingleAssignment,
    TwoVersion,
    policy_from_name,
)


class TestPolicies:
    def test_single_assignment(self):
        p = SingleAssignment()
        assert p.keep is None
        assert p.is_single_assignment
        assert p.name == "single_assignment"
        assert p.buffers_per_block() is None

    def test_reuse(self):
        p = Reuse()
        assert p.keep == 1
        assert not p.is_single_assignment
        assert p.name == "reuse"

    def test_two_version(self):
        p = TwoVersion()
        assert p.keep == 2
        assert p.name == "two_version"
        assert p.buffers_per_block() == 2

    def test_keep_k(self):
        assert KeepK(5).keep == 5
        assert KeepK(5).name == "keep5"

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            AllocationPolicy(keep=0)
        with pytest.raises(ValueError):
            KeepK(-1)

    def test_equality(self):
        assert Reuse() == Reuse()
        assert Reuse() != TwoVersion()
        assert KeepK(1) == Reuse()


class TestFromName:
    @pytest.mark.parametrize(
        "name,keep",
        [
            ("reuse", 1),
            ("two_version", 2),
            ("two-version", 2),
            ("single_assignment", None),
            ("single-assignment", None),
            ("keep3", 3),
            ("KEEP7", 7),
            ("  Reuse  ", 1),
        ],
    )
    def test_valid_names(self, name, keep):
        assert policy_from_name(name).keep == keep

    @pytest.mark.parametrize("name", ["nope", "keep", "keepX", "", "keep0"])
    def test_invalid_names(self, name):
        with pytest.raises(ValueError):
            policy_from_name(name)
