"""Unit tests for the versioned block store."""

import pytest

from repro.exceptions import DataCorruptionError, OverwrittenError
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import KeepK, Reuse, SingleAssignment, TwoVersion
from repro.memory.blockstore import BlockStore


def ref(v, block="b"):
    return BlockRef(block, v)


class TestSingleAssignment:
    def test_all_versions_stay_resident(self):
        s = BlockStore(SingleAssignment())
        for v in range(5):
            s.write(ref(v), v * 10)
        for v in range(5):
            assert s.read(ref(v)) == v * 10

    def test_never_written_raises_overwritten(self):
        s = BlockStore()
        with pytest.raises(OverwrittenError) as ei:
            s.read(ref(3))
        assert ei.value.resident is None


class TestReuse:
    def test_only_latest_resident(self):
        s = BlockStore(Reuse())
        s.write(ref(0), "a")
        s.write(ref(1), "b")
        assert s.read(ref(1)) == "b"
        with pytest.raises(OverwrittenError) as ei:
            s.read(ref(0))
        assert ei.value.resident == 1

    def test_retention_is_by_write_recency_not_version(self):
        # Recovery replay: writing an *older* version evicts the newer one.
        s = BlockStore(Reuse())
        s.write(ref(3), "new")
        s.write(ref(2), "replayed")
        assert s.read(ref(2)) == "replayed"
        with pytest.raises(OverwrittenError):
            s.read(ref(3))

    def test_rewrite_same_version_refreshes_in_place(self):
        s = BlockStore(Reuse())
        s.write(ref(1), "x")
        s.write(ref(1), "y")
        assert s.read(ref(1)) == "y"
        assert s.stats.rewrites == 1
        assert s.stats.evictions == 0


class TestTwoVersion:
    def test_two_newest_writes_resident(self):
        s = BlockStore(TwoVersion())
        s.write(ref(0), 0)
        s.write(ref(1), 1)
        s.write(ref(2), 2)
        assert s.read(ref(1)) == 1
        assert s.read(ref(2)) == 2
        with pytest.raises(OverwrittenError):
            s.read(ref(0))

    def test_keep_k(self):
        s = BlockStore(KeepK(3))
        for v in range(5):
            s.write(ref(v), v)
        assert s.resident_versions("b") == (2, 3, 4)


class TestCorruption:
    def test_read_of_corrupted_raises(self):
        s = BlockStore()
        s.write(ref(0), "data")
        assert s.mark_corrupted(ref(0))
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))

    def test_corruption_sticky_until_rewrite(self):
        s = BlockStore()
        s.write(ref(0), "data")
        s.mark_corrupted(ref(0))
        with pytest.raises(DataCorruptionError):
            s.read(ref(0))
        s.write(ref(0), "regenerated")
        assert s.read(ref(0)) == "regenerated"

    def test_marking_nonresident_is_noop(self):
        s = BlockStore(Reuse())
        s.write(ref(0), "a")
        s.write(ref(1), "b")
        assert not s.mark_corrupted(ref(0))  # already evicted

    def test_status_of(self):
        s = BlockStore()
        assert s.status_of(ref(0)) == "missing"
        s.write(ref(0), 1)
        assert s.status_of(ref(0)) == "ok"
        s.mark_corrupted(ref(0))
        assert s.status_of(ref(0)) == "corrupted"

    def test_is_available(self):
        s = BlockStore()
        assert not s.is_available(ref(0))
        s.write(ref(0), 1)
        assert s.is_available(ref(0))
        s.mark_corrupted(ref(0))
        assert not s.is_available(ref(0))


class TestPinned:
    def test_pinned_survives_eviction(self):
        s = BlockStore(Reuse())
        s.pin(ref(0), "input")
        for v in range(1, 5):
            s.write(ref(v), v)
        assert s.read(ref(0)) == "input"
        assert s.is_pinned(ref(0))

    def test_pinned_immune_to_corruption(self):
        s = BlockStore()
        s.pin(ref(0), "input")
        assert not s.mark_corrupted(ref(0))
        assert s.read(ref(0)) == "input"
        assert s.status_of(ref(0)) == "ok"

    def test_pinned_does_not_occupy_ring(self):
        s = BlockStore(Reuse())
        s.pin(ref(0), "input")
        s.write(ref(1), 1)
        s.write(ref(2), 2)
        assert s.read(ref(0)) == "input"
        assert s.read(ref(2)) == 2


class TestIntrospection:
    def test_peek_never_raises(self):
        s = BlockStore()
        assert s.peek(ref(9), default="d") == "d"
        s.write(ref(0), 1)
        s.mark_corrupted(ref(0))
        assert s.peek(ref(0), default="d") == "d"

    def test_newest_resident(self):
        s = BlockStore(TwoVersion())
        assert s.newest_resident("b") is None
        s.write(ref(4), 4)
        s.write(ref(2), 2)
        assert s.newest_resident("b") == 2  # by write order

    def test_stats_counters(self):
        s = BlockStore(Reuse())
        s.write(ref(0), 0)
        s.write(ref(1), 1)
        s.read(ref(1))
        with pytest.raises(OverwrittenError):
            s.read(ref(0))
        st = s.stats.snapshot()
        assert st["writes"] == 2
        assert st["evictions"] == 1
        assert st["reads"] == 2
        assert st["overwritten_reads"] == 1

    def test_blocks_and_refs(self):
        s = BlockStore()
        s.write(BlockRef("x", 0), 1)
        s.write(BlockRef("y", 2), 1)
        assert set(s.blocks()) == {"x", "y"}
        assert set(s.refs()) == {BlockRef("x", 0), BlockRef("y", 2)}
        assert s.resident_count() == 2

    def test_peak_resident_tracks_high_water(self):
        s = BlockStore(Reuse())
        for b in range(4):
            s.write(BlockRef(b, 0), b)
            s.write(BlockRef(b, 1), b)
        assert s.stats.peak_resident == 4


class TestCorruptData:
    """The silent-corruption primitive used by repro.detect."""

    def test_mutates_without_flag_or_error(self):
        s = BlockStore()
        s.write(ref(0), 10)
        assert s.corrupt_data(ref(0), lambda v: v + 1)
        assert s.read(ref(0)) == 11  # no DataCorruptionError: it is silent
        assert s.status_of(ref(0)) == "ok"
        assert s.stats.silent_corruptions == 1
        assert s.stats.corruptions_marked == 0

    def test_pinned_version_refused(self):
        s = BlockStore()
        s.pin(ref(0), "input")
        assert not s.corrupt_data(ref(0), lambda v: v + "!")
        assert s.read(ref(0)) == "input"
        assert s.stats.silent_corruptions == 0

    def test_missing_version_refused(self):
        s = BlockStore()
        assert not s.corrupt_data(ref(5), lambda v: v)
        assert s.stats.silent_corruptions == 0
