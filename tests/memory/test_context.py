"""Unit tests for the compute context (footprint enforcement)."""

import pytest

from repro.exceptions import SchedulerError
from repro.graph.builders import diamond_graph
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.memory.context import StoreComputeContext


@pytest.fixture
def setup():
    spec = diamond_graph(width=2)
    store = BlockStore()
    store.write(BlockRef("src", 0), "SRC")
    return spec, store


class TestFootprint:
    def test_declared_read_ok(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0))
        assert ctx.read(BlockRef("src", 0)) == "SRC"
        assert ctx.reads == [BlockRef("src", 0)]

    def test_undeclared_read_rejected(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0))
        with pytest.raises(SchedulerError, match="undeclared input"):
            ctx.read(BlockRef("other", 0))

    def test_declared_write_ok(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0))
        ctx.write(BlockRef(("mid", 0), 0), 42)
        assert store.read(BlockRef(("mid", 0), 0)) == 42
        assert ctx.writes == [BlockRef(("mid", 0), 0)]

    def test_undeclared_write_rejected(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0))
        with pytest.raises(SchedulerError, match="undeclared output"):
            ctx.write(BlockRef("src", 0), "clobber")

    def test_non_strict_allows_anything(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0), strict=False)
        ctx.write(BlockRef("anything", 7), 1)
        assert ctx.read(BlockRef("anything", 7)) == 1

    def test_plain_tuples_accepted_as_refs(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0))
        assert ctx.read(("src", 0)) == "SRC"


class TestHelpers:
    def test_read_all_inputs(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 1))
        assert ctx.read_all_inputs() == {BlockRef("src", 0): "SRC"}

    def test_missing_outputs(self, setup):
        spec, store = setup
        ctx = StoreComputeContext(spec, store, ("mid", 0))
        assert ctx.missing_outputs() == (BlockRef(("mid", 0), 0),)
        ctx.write(BlockRef(("mid", 0), 0), 1)
        assert ctx.missing_outputs() == ()
