"""Unit tests for the shared-memory block-store backend."""

import numpy as np
import pytest

from repro.exceptions import DataCorruptionError, OverwrittenError
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import Reuse, SingleAssignment
from repro.memory.shm import (
    SharedMemoryBlockStore,
    attach_payload,
    attach_readonly,
    materialize_segment,
)


def ref(v, block="b"):
    return BlockRef(block, v)


@pytest.fixture
def store():
    # These tests exercise segment mechanics with tiny arrays, so disable
    # the small-block inline path that would otherwise keep them plain.
    s = SharedMemoryBlockStore(SingleAssignment(), small_block_bytes=0)
    yield s
    s.close()


class TestPayloadRoundTrip:
    def test_array_payload_reads_back_equal(self, store):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        store.write(ref(0), a)
        got = store.read(ref(0))
        np.testing.assert_array_equal(got, a)
        # The stored value is a *view* over the segment, not the original.
        assert got is not a
        assert got.base is not None

    def test_nested_structure_preserved(self, store):
        payload = (np.ones(3, dtype=np.int32), {"k": [np.zeros(2), "tag"]}, 7)
        store.write(ref(0), payload)
        bottom, d, scalar = store.read(ref(0))
        np.testing.assert_array_equal(bottom, np.ones(3, dtype=np.int32))
        np.testing.assert_array_equal(d["k"][0], np.zeros(2))
        assert d["k"][1] == "tag" and scalar == 7

    def test_non_array_payload_stored_as_is(self, store):
        store.write(ref(0), ("token", (1, 2)))
        assert store.read(ref(0)) == ("token", (1, 2))
        assert store.descriptor(ref(0)) is None
        assert store.shm_stats.pickled_payloads == 1

    def test_noncontiguous_input_contiguified(self, store):
        a = np.arange(16, dtype=np.float64).reshape(4, 4)[:, ::2]
        store.write(ref(0), a)
        np.testing.assert_array_equal(store.read(ref(0)), a)


class TestDescriptorAttach:
    def test_descriptor_rebuilds_identical_payload(self, store):
        payload = (np.arange(6, dtype=np.int64), np.eye(3))
        store.write(ref(0), payload)
        desc = store.descriptor(ref(0))
        assert desc is not None
        got, att = attach_payload(desc)
        try:
            np.testing.assert_array_equal(got[0], payload[0])
            np.testing.assert_array_equal(got[1], payload[1])
            assert not got[0].flags.writeable
        finally:
            del got
            att.close()

    def test_attach_after_eviction_raises_file_not_found(self):
        s = SharedMemoryBlockStore(Reuse(), small_block_bytes=0)
        try:
            s.write(ref(0), np.zeros(4))
            desc = s.descriptor(ref(0))
            s.write(ref(1), np.ones(4))  # evicts v0, unlinks its segment
            assert s.descriptor(ref(0)) is None
            with pytest.raises(FileNotFoundError):
                attach_readonly(desc.name)
        finally:
            s.close()

    def test_parent_read_of_evicted_version_still_raises(self):
        s = SharedMemoryBlockStore(Reuse(), small_block_bytes=0)
        try:
            s.write(ref(0), np.zeros(4))
            s.write(ref(1), np.ones(4))
            with pytest.raises(OverwrittenError):
                s.read(ref(0))
        finally:
            s.close()


class TestFaultSemantics:
    def test_mark_corrupted_is_parent_side_flag(self, store):
        store.write(ref(0), np.zeros(4))
        store.mark_corrupted(ref(0))
        with pytest.raises(DataCorruptionError):
            store.read(ref(0))

    def test_corrupt_data_mutates_segment_in_place(self, store):
        store.write(ref(0), np.zeros(4))
        desc = store.descriptor(ref(0))
        assert store.corrupt_data(ref(0), lambda a: a + 99.0)
        # Same segment, same descriptor -- workers see the corrupted bytes.
        assert store.descriptor(ref(0)) == desc
        got, att = attach_payload(desc)
        try:
            np.testing.assert_array_equal(got, np.full(4, 99.0))
        finally:
            del got
            att.close()

    def test_corrupt_data_with_shape_change_reseats_segment(self, store):
        store.write(ref(0), np.zeros(4))
        old = store.descriptor(ref(0))
        assert store.corrupt_data(ref(0), lambda a: np.zeros(8))
        new = store.descriptor(ref(0))
        assert new is not None and new.name != old.name
        np.testing.assert_array_equal(store.read(ref(0)), np.zeros(8))

    def test_rewrite_same_version_replaces_segment(self, store):
        store.write(ref(0), np.zeros(4))
        old = store.descriptor(ref(0))
        store.write(ref(0), np.ones(4))  # recovery replay
        new = store.descriptor(ref(0))
        assert new.name != old.name
        with pytest.raises(FileNotFoundError):
            attach_readonly(old.name)


class TestLifecycle:
    def test_pinned_versions_survive_sweeps(self):
        s = SharedMemoryBlockStore(Reuse(), small_block_bytes=0)
        try:
            s.pin(BlockRef("input", 0), np.arange(3))
            for v in range(3):
                s.write(ref(v), np.full(2, v))
            assert s.descriptor(BlockRef("input", 0)) is not None
            np.testing.assert_array_equal(s.read(BlockRef("input", 0)), np.arange(3))
        finally:
            s.close()

    def test_stats_track_segment_lifecycle(self):
        s = SharedMemoryBlockStore(Reuse(), small_block_bytes=0)
        try:
            for v in range(3):
                s.write(ref(v), np.zeros(8))
            st = s.shm_stats
            assert st.segments_created == 3
            assert st.segments_released == 2  # two evictions under Reuse
            assert st.bytes_current == 64
            assert st.bytes_peak >= st.bytes_current
        finally:
            s.close()
        assert s.shm_stats.bytes_current == 0

    def test_close_is_idempotent_and_unlinks(self, store):
        store.write(ref(0), np.zeros(4))
        desc = store.descriptor(ref(0))
        store.close()
        store.close()
        with pytest.raises(FileNotFoundError):
            attach_readonly(desc.name)


class TestSmallBlockInline:
    """Array payloads below ``small_block_bytes`` skip segment creation."""

    def test_small_array_stays_plain_value(self):
        s = SharedMemoryBlockStore(SingleAssignment())  # default threshold
        try:
            a = np.arange(16, dtype=np.float64)  # 128 B << 64 KiB
            s.write(ref(0), a)
            assert s.descriptor(ref(0)) is None
            assert s.shm_stats.pickled_payloads == 1
            assert s.shm_stats.segments_created == 0
            np.testing.assert_array_equal(s.read(ref(0)), a)
        finally:
            s.close()

    def test_large_array_still_gets_segment(self):
        s = SharedMemoryBlockStore(SingleAssignment())
        try:
            a = np.zeros(16384, dtype=np.float64)  # 128 KiB > threshold
            s.write(ref(0), a)
            assert s.descriptor(ref(0)) is not None
            assert s.shm_stats.segments_created == 1
        finally:
            s.close()

    def test_materialize_threshold_param(self):
        a = np.arange(8, dtype=np.float64)
        payload, seg = materialize_segment(a, small_bytes=1024)
        assert seg is None and payload is a
        payload, seg = materialize_segment(a)  # default: always segment
        try:
            assert seg is not None
        finally:
            del payload
            seg.dispose()


class TestMaterialize:
    def test_no_arrays_means_no_segment(self):
        payload, seg = materialize_segment({"a": 1})
        assert payload == {"a": 1} and seg is None

    def test_segment_views_alias_segment_bytes(self):
        payload, seg = materialize_segment(np.arange(4, dtype=np.int64))
        try:
            got, att = attach_payload(seg.descriptor)
            try:
                np.testing.assert_array_equal(got, payload)
            finally:
                del got
                att.close()
        finally:
            del payload
            seg.dispose()
