"""Replay-parity regression guard for the buffered EventLog.

The default :class:`EventLog` now appends to per-thread buffers and
merges them into one totally ordered sequence at quiescence; the
single-lock implementation survives as ``EventLog(buffered=False)`` (and
is mandatory for capacity-bounded ring logs).  Buffering must be
invisible to every consumer: identical Event tuples and replayed
counters versus the locked reference on a deterministic run, a gap-free
seq order under real thread interleavings, and traces that
``repro.verify invariants`` accepts unchanged.
"""

from repro.apps import make_app
from repro.core import FTScheduler
from repro.faults import FaultInjector, plan_faults
from repro.graph.builders import chain_graph, grid_graph
from repro.obs import EventLog, replay_summary, verify_consistency
from repro.obs.events import NULL_LOG
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
from repro.runtime.tracing import ExecutionTrace
from repro.verify.invariants import check_events


def run_traced(spec, runtime, log, plan=None, store=None, app=None):
    from repro.memory.blockstore import BlockStore

    store = store if store is not None else BlockStore()
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app or spec, store, trace) if plan else None
    FTScheduler(spec, runtime, store=store, hooks=hooks, trace=trace,
                event_log=log).run()
    return trace


class TestBufferedMatchesLockedReference:
    def test_modes_are_wired_as_expected(self):
        assert EventLog().buffered
        assert not EventLog(buffered=False).buffered
        assert not EventLog(capacity=64).buffered  # rings must count drops

    def test_identical_events_fault_free(self):
        spec = grid_graph(5, 5)
        buffered, locked = EventLog(), EventLog(buffered=False)
        run_traced(spec, InlineRuntime(), buffered)
        run_traced(spec, InlineRuntime(), locked)
        assert buffered.events == locked.events

    def test_identical_events_and_replay_under_faults_simulated(self):
        """Same seed, same fault plan, both log modes: the simulated run
        is deterministic, so the buffered log must reproduce the locked
        log's Event tuples bit-for-bit -- same seq, t, worker, kind, key,
        life, data -- and replay to the same counters."""
        app = make_app("cholesky", scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                           count=2, seed=3)
        logs = {}
        for name, log in (("buffered", EventLog()),
                          ("locked", EventLog(buffered=False))):
            trace = run_traced(app, SimulatedRuntime(workers=4, seed=2), log,
                               plan=plan, store=app.make_store(True), app=app)
            assert trace.total_recoveries >= 1
            assert verify_consistency(log.events, trace) == {}
            logs[name] = log
        assert logs["buffered"].events == logs["locked"].events
        assert (replay_summary(logs["buffered"].events)
                == replay_summary(logs["locked"].events))

    def test_buffered_log_is_gap_free_and_replays_on_real_threads(self):
        """Under genuine interleavings the two modes need not emit in the
        same global order, but the buffered merge must still yield a
        gap-free seq sequence whose counters replay exactly."""
        app = make_app("lu", scale="tiny")
        store = app.make_store(True)
        plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                           count=2, seed=5)
        log = EventLog()
        trace = run_traced(app, ThreadedRuntime(workers=8, seed=1), log,
                           plan=plan, store=store, app=app)
        app.verify(store)
        events = log.events
        assert [e.seq for e in events] == list(range(len(events)))
        assert len(events) == log.total_emitted
        assert verify_consistency(events, trace) == {}

    def test_events_stable_across_repeated_drains(self):
        """Reading the merged view twice (and after further emissions)
        must never reorder or drop events."""
        log = EventLog()
        run_traced(chain_graph(6), InlineRuntime(), log)
        first = log.events
        assert log.events == first  # memoized drain is stable
        again = EventLog()
        run_traced(chain_graph(6), InlineRuntime(), again)
        assert again.events == first  # and deterministic across runs


class TestVerifyInvariantsAcceptsBufferedTraces:
    def test_faulty_buffered_trace_is_clean(self):
        app = make_app("lcs", scale="tiny")
        plan = plan_faults(app, phase="before_compute", count=3, seed=0)
        log = EventLog()
        run_traced(app, SimulatedRuntime(workers=3, seed=0), log,
                   plan=plan, store=app.make_store(True), app=app)
        assert check_events(log.events, spec=app, strict=True) == []

    def test_locked_reference_trace_is_equally_clean(self):
        app = make_app("lcs", scale="tiny")
        plan = plan_faults(app, phase="before_compute", count=3, seed=0)
        log = EventLog(buffered=False)
        run_traced(app, SimulatedRuntime(workers=3, seed=0), log,
                   plan=plan, store=app.make_store(True), app=app)
        assert check_events(log.events, spec=app, strict=True) == []

    def test_null_log_identity_survives(self):
        """The schedulers' fast no-tracing branch keys off identity with
        NULL_LOG; buffering must not have changed that sentinel."""
        sched = FTScheduler(chain_graph(3), InlineRuntime())
        assert sched.log is NULL_LOG
        assert not sched._obs
