"""Unit and stress tests for the structured event log."""

import threading

import pytest

from repro.obs.events import NULL_LOG, Event, EventKind, EventLog, NullEventLog, events_in_order


class TestEventLogBasics:
    def test_emit_records_seq_in_order(self):
        log = EventLog()
        log.emit(EventKind.TASK_CREATED, "a", 1)
        log.emit(EventKind.COMPUTE_BEGIN, "a", 1)
        events = log.events
        assert [e.seq for e in events] == [0, 1]
        assert events[0].kind is EventKind.TASK_CREATED
        assert events[0].key == "a"
        assert events[0].life == 1

    def test_data_kwargs_preserved(self):
        log = EventLog()
        log.emit(EventKind.COMPUTE_FAULT, "a", 2, exc="TaskCorruptionError", source="b")
        e = log.events[0]
        assert e.data == {"exc": "TaskCorruptionError", "source": "b"}

    def test_emit_at_explicit_attribution(self):
        log = EventLog()
        log.emit_at(EventKind.STEAL, 42.0, 3, victim=1, depth=5)
        e = log.events[0]
        assert e.t == 42.0
        assert e.worker == 3
        assert e.data["victim"] == 1

    def test_default_clock_and_worker(self):
        log = EventLog()
        log.emit(EventKind.PARK)
        e = log.events[0]
        assert e.worker == 0
        assert e.t >= 0

    def test_bind_runtime_adopts_clock_and_worker(self):
        class FakeRuntime:
            def obs_now(self):
                return 7.5

            def obs_worker(self):
                return 2

        log = EventLog()
        log.bind_runtime(FakeRuntime())
        log.emit(EventKind.NOTIFY, "k", 1)
        assert log.events[0].t == 7.5
        assert log.events[0].worker == 2

    def test_bind_runtime_without_obs_surface_is_noop(self):
        log = EventLog()
        log.bind_runtime(object())
        log.emit(EventKind.PARK)  # must not raise

    def test_by_kind_filters(self):
        log = EventLog()
        log.emit(EventKind.NOTIFY, "a", 1)
        log.emit(EventKind.RECOVERY, "a", 2)
        log.emit(EventKind.NOTIFY, "b", 1)
        assert len(log.by_kind(EventKind.NOTIFY)) == 2
        assert len(log.by_kind(EventKind.RECOVERY, EventKind.NOTIFY)) == 3

    def test_len_iter_clear(self):
        log = EventLog()
        for i in range(5):
            log.emit(EventKind.PARK)
        assert len(log) == 5
        assert len(list(log)) == 5
        log.clear()
        assert len(log) == 0
        assert log.total_emitted == 0

    def test_events_in_order_sorts_by_seq(self):
        events = [
            Event(2, 0.0, 0, EventKind.PARK),
            Event(0, 5.0, 0, EventKind.PARK),
            Event(1, 3.0, 0, EventKind.PARK),
        ]
        assert [e.seq for e in events_in_order(events)] == [0, 1, 2]


class TestRingBuffer:
    def test_capacity_bounds_retention(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit(EventKind.NOTIFY, i, 1)
        assert len(log) == 3
        assert log.total_emitted == 10
        assert log.dropped == 7
        assert [e.key for e in log.events] == [7, 8, 9]  # most recent survive

    def test_unbounded_never_drops(self):
        log = EventLog()
        for i in range(100):
            log.emit(EventKind.NOTIFY, i, 1)
        assert log.dropped == 0
        assert len(log) == 100

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestNullLog:
    def test_disabled_and_records_nothing(self):
        assert NULL_LOG.enabled is False
        NULL_LOG.emit(EventKind.NOTIFY, "a", 1)
        NULL_LOG.emit_at(EventKind.STEAL, 1.0, 0)
        assert len(NULL_LOG) == 0

    def test_fresh_instance_also_disabled(self):
        log = NullEventLog()
        log.emit(EventKind.PARK)
        assert log.events == []

    def test_event_to_dict_stringifies_tuple_keys(self):
        e = Event(0, 1.5, 2, EventKind.REINIT, key=("upd", 1, 2), life=3,
                  data={"successor": ("potrf", 4)})
        d = e.to_dict()
        assert d["key"] == "('upd', 1, 2)"
        assert d["successor"] == "('potrf', 4)"
        assert d["kind"] == "reinit"


class TestConcurrentEmission:
    def test_no_lost_or_duplicated_events(self):
        """Many threads hammering one log: every emission is retained
        exactly once, with a gap-free global sequence."""
        log = EventLog()
        n_threads, per_thread = 8, 500

        def work(tid):
            for i in range(per_thread):
                log.emit(EventKind.NOTIFY, (tid, i), 1)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        events = log.events
        assert len(events) == n_threads * per_thread
        seqs = [e.seq for e in events]
        assert seqs == list(range(n_threads * per_thread))  # gap-free, in order
        keys = [e.key for e in events]
        assert len(set(keys)) == len(keys)  # nothing duplicated
        # Per-thread program order is preserved in the global order.
        for tid in range(n_threads):
            mine = [e.key[1] for e in events if e.key[0] == tid]
            assert mine == list(range(per_thread))
