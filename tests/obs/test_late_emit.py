"""The buffered EventLog's post-quiescence guarantees: late emissions
either extend the drained prefix deterministically, raise
:class:`LateEmitError` when they would rewrite it, or raise
:class:`SealedLogError` once the log is sealed."""

import threading

import pytest

from repro.obs.events import (
    Event,
    EventKind,
    EventLog,
    LateEmitError,
    SealedLogError,
)


class TestSeal:
    def test_emit_after_seal_raises_at_emit_site(self):
        log = EventLog()
        log.emit(EventKind.NOTIFY, "a", 1)
        log.seal()
        assert log.sealed
        with pytest.raises(SealedLogError):
            log.emit(EventKind.NOTIFY, "b", 1)

    def test_emit_at_after_seal_raises(self):
        log = EventLog()
        log.seal()
        with pytest.raises(SealedLogError):
            log.emit_at(EventKind.PARK, 1.0, 0)

    def test_unbuffered_log_seals_too(self):
        log = EventLog(buffered=False)
        log.emit(EventKind.PARK)
        log.seal()
        with pytest.raises(SealedLogError):
            log.emit(EventKind.PARK)

    def test_sealed_log_still_readable(self):
        log = EventLog()
        log.emit(EventKind.NOTIFY, "a", 1)
        log.seal()
        assert [e.key for e in log.events] == ["a"]


class TestLateMerge:
    def test_late_higher_seq_events_extend_the_prefix(self):
        """An emission arriving after a drain is fine as long as its
        sequence number extends the observed order -- the merged view
        grows deterministically, it never reorders."""
        log = EventLog()
        log.emit(EventKind.NOTIFY, "a", 1)
        log.emit(EventKind.NOTIFY, "b", 1)
        first = [e.key for e in log.events]  # drain once
        assert first == ["a", "b"]

        done = threading.Event()

        def late():
            log.emit(EventKind.SPAN, None, 0, phase="kernel", wall=0.1)
            done.set()

        threading.Thread(target=late).start()
        assert done.wait(5.0)
        again = log.events
        assert [e.key for e in again] == ["a", "b", None]
        assert [e.seq for e in again] == [0, 1, 2]

    def test_interleaving_late_emit_raises(self):
        """A worker that reserved a sequence number before quiescence but
        delivered its event after a drain would silently rewrite the
        drained prefix -- the next drain must refuse.  The stall is
        simulated by reserving a seq and appending the event later, which
        is exactly the state a thread preempted mid-``emit`` leaves."""
        log = EventLog()
        log.emit(EventKind.NOTIFY, "a", 1)
        stalled_seq = next(log._count)  # worker grabs seq 1, then stalls
        log.emit(EventKind.NOTIFY, "b", 1)  # seq 2
        assert [e.seq for e in log.events] == [0, 2]  # drained prefix

        # The stalled worker finally delivers seq 1 -- inside the prefix.
        log._local.buf.append(
            Event(stalled_seq, 0.0, 1, EventKind.SPAN, None, 0, {})
        )
        with pytest.raises(LateEmitError, match="reorder the drained prefix"):
            _ = log.events

    def test_undrained_log_accepts_any_interleaving(self):
        """The guard protects *observed* order only: if nobody drained,
        out-of-order buffer delivery is simply merged."""
        log = EventLog()
        reserved = next(log._count)
        log.emit(EventKind.NOTIFY, "b", 1)
        log._thread_buffer()  # ensure the local buffer exists
        log._local.buf.append(
            Event(reserved, 0.0, 0, EventKind.NOTIFY, "a", 1, {})
        )
        assert [e.key for e in log.events] == ["a", "b"]


class TestClear:
    def test_clear_resets_prefix_and_sequence(self):
        log = EventLog()
        log.emit(EventKind.NOTIFY, "a", 1)
        _ = log.events  # observe the order
        log.clear()
        assert len(log) == 0
        log.emit(EventKind.NOTIFY, "b", 1)  # restarts at seq 0
        events = log.events  # must not raise LateEmitError
        assert [(e.seq, e.key) for e in events] == [(0, "b")]
