"""Unit tests for the live-metrics layer: registry semantics, histogram
quantiles, Prometheus rendering, the sampling collector, the HTTP
endpoint, and the inertness of the disabled registry."""

import json
import threading
import urllib.request

import pytest

from repro.obs.live import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    MetricsServer,
    NullMetricsRegistry,
    iter_worker_values,
    render_prometheus,
)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_tasks_total", "tasks")
        b = reg.counter("repro_tasks_total")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_distinct_labels_are_distinct_instruments(self):
        reg = MetricsRegistry()
        w0 = reg.counter("repro_frames_total", worker=0)
        w1 = reg.counter("repro_frames_total", worker=1)
        assert w0 is not w1
        w0.inc(3)
        assert reg.value("repro_frames_total", worker=0) == 3.0
        assert reg.value("repro_frames_total", worker=1) == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", a=1, b=2)
        b = reg.gauge("g", b=2, a=1)
        assert a is b

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_mixed")
        with pytest.raises(TypeError):
            reg.gauge("repro_mixed")
        # ... even under different labels: one name, one kind.
        with pytest.raises(TypeError):
            reg.histogram("repro_mixed", worker=3)

    def test_collect_flattens_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        names = {s.name for s in reg.collect()}
        assert names == {"c", "g", "h_bucket", "h_count", "h_sum"}

    def test_value_returns_none_for_unknown_and_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        assert reg.value("h") is None
        assert reg.value("nope") is None

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_concurrent_publication_is_exact(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 1000

        def work():
            c = reg.counter("hammered")
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.value("hammered") == n_threads * per_thread


class TestGauges:
    def test_gauge_set_inc_dec(self):
        g = Gauge("g", "", ())
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0

    def test_callback_gauge_reads_live_value(self):
        depth = [0]
        g = CallbackGauge("q", "", (), fn=lambda: depth[0])
        assert g.value == 0.0
        depth[0] = 9
        assert g.value == 9.0

    def test_callback_gauge_survives_dead_subject(self):
        def boom():
            raise RuntimeError("store torn down")

        g = CallbackGauge("q", "", (), fn=boom)
        assert g.value != g.value  # NaN, not an exception


class TestHistogram:
    def test_quantiles_interpolate_within_bucket(self):
        h = Histogram("h", "", (), buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(6.5)
        # Median falls in the (1, 2] bucket holding 2 of 4 observations.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) == pytest.approx(0.0, abs=1.0)
        assert h.quantile(1.0) <= 4.0

    def test_overflow_clamps_to_largest_bound(self):
        h = Histogram("h", "", (), buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.5) == 2.0

    def test_empty_histogram_quantile_is_zero(self):
        h = Histogram("h", "", ())
        assert h.quantile(0.9) == 0.0

    def test_quantile_bounds_checked(self):
        h = Histogram("h", "", ())
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_samples_are_cumulative_with_inf(self):
        h = Histogram("h", "", (), buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        rows = {(suffix, extra): v for suffix, extra, v in h.samples()}
        assert rows[("_bucket", (("le", "1"),))] == 1.0
        assert rows[("_bucket", (("le", "2"),))] == 2.0
        assert rows[("_bucket", (("le", "+Inf"),))] == 3.0
        assert rows[("_count", ())] == 3.0

    def test_default_buckets_span_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5 and DEFAULT_BUCKETS[-1] >= 10.0


class TestPrometheusRender:
    def test_render_has_type_headers_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("repro_tasks_total", "Tasks executed", worker=0).inc(4)
        reg.gauge("repro_queue_depth", worker=1).set(2)
        text = render_prometheus(reg)
        assert "# TYPE repro_tasks_total counter" in text
        assert "# HELP repro_tasks_total Tasks executed" in text
        assert 'repro_tasks_total{worker="0"} 4' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert text.endswith("\n")

    def test_histogram_renders_bucket_series(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.5, 1.0)).observe(0.7)
        text = render_prometheus(reg)
        assert 'lat_bucket{le="0.5"} 0' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", app='say "hi"\nthere').inc()
        text = render_prometheus(reg)
        assert r"say \"hi\"\nthere" in text


class TestCollector:
    def test_ring_bounded_and_rate_computed(self):
        reg = MetricsRegistry()
        c = reg.counter("ticks")
        coll = MetricsCollector(reg, interval=0.01, capacity=4)
        for _ in range(6):
            c.inc(10)
            coll.sample_once()
        assert len(coll.snapshots()) == 4  # ring dropped the oldest
        assert coll.latest()[("ticks", ())] == 60.0
        assert coll.rate("ticks", window=60.0) > 0.0

    def test_rate_empty_and_unknown_series(self):
        reg = MetricsRegistry()
        coll = MetricsCollector(reg, interval=0.01)
        assert coll.rate("ticks") == 0.0
        coll.sample_once()
        coll.sample_once()
        assert coll.rate("nope") == 0.0

    def test_background_thread_samples(self):
        reg = MetricsRegistry()
        reg.counter("alive").inc()
        with MetricsCollector(reg, interval=0.01) as coll:
            deadline = threading.Event()
            for _ in range(200):
                if coll.snapshots():
                    break
                deadline.wait(0.01)
        assert coll.snapshots()
        coll.stop()  # idempotent

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(MetricsRegistry(), interval=0.0)


class TestServer:
    def test_scrape_metrics_and_json(self):
        reg = MetricsRegistry()
        reg.counter("repro_probe_total").inc(3)
        with MetricsServer(reg) as srv:
            assert srv.port > 0
            text = urllib.request.urlopen(srv.url, timeout=5).read().decode()
            assert "repro_probe_total 3" in text
            root = urllib.request.urlopen(
                f"http://127.0.0.1:{srv.port}/", timeout=5
            ).read()
            assert json.loads(root)["repro_probe_total"] == 3.0

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry()) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{srv.port}/nope", timeout=5
                )
            assert exc.value.code == 404


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        NULL_METRICS.callback_gauge("cb", fn=lambda: 1.0)
        assert NULL_METRICS.collect() == []

    def test_fresh_instance_also_inert(self):
        reg = NullMetricsRegistry()
        reg.counter("c").inc(100)
        assert reg.collect() == []

    def test_identity_guard_idiom(self):
        # The _mx flag every hot path caches.
        assert (NULL_METRICS is not NULL_METRICS) is False
        assert MetricsRegistry() is not NULL_METRICS


class TestIterWorkerValues:
    def test_extracts_and_sorts_worker_series(self):
        reg = MetricsRegistry()
        reg.gauge("busy", worker=2).set(20)
        reg.gauge("busy", worker=0).set(5)
        reg.gauge("other").set(9)
        pairs = iter_worker_values(reg.collect(), "busy")
        assert pairs == [(0, 5.0), (2, 20.0)]
