"""Tests for worker metrics and the recovery-timeline report."""

from repro.apps import make_app
from repro.core import FTScheduler
from repro.faults import FaultInjector, plan_faults
from repro.faults.model import FaultPlan
from repro.graph.builders import chain_graph
from repro.memory.blockstore import BlockStore
from repro.obs import (
    EventKind,
    EventLog,
    format_recovery_timeline,
    format_worker_metrics,
    recovery_timeline,
    worker_metrics,
)
from repro.runtime import InlineRuntime, SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_traced(app_name="cholesky", workers=4, count=2, seed=3, phase="after_compute"):
    app = make_app(app_name, scale="tiny")
    store = app.make_store(True)
    trace = ExecutionTrace()
    log = EventLog()
    plan = plan_faults(app, phase=phase, task_type="v=rand", count=count, seed=seed)
    runtime = SimulatedRuntime(workers=workers, seed=seed, event_log=log)
    sched = FTScheduler(app, runtime, store=store,
                        hooks=FaultInjector(plan, app, store, trace),
                        trace=trace, event_log=log)
    result = sched.run()
    return trace, log, result


class TestWorkerMetrics:
    def test_per_worker_rows_and_totals(self):
        trace, log, result = run_traced()
        metrics = worker_metrics(log.events, run=result.run)
        assert len(metrics) == 4
        assert sum(m.computes for m in metrics) == trace.total_computes
        assert sum(m.frames for m in metrics) == result.run.frames
        assert sum(m.steals for m in metrics) == result.run.steals

    def test_busy_idle_partition_span(self):
        _, log, result = run_traced()
        for m in worker_metrics(log.events, run=result.run):
            assert m.span == result.run.makespan
            assert 0.0 <= m.busy <= m.span + 1e-9
            assert abs((m.busy + m.idle) - m.span) < 1e-6
            assert 0.0 <= m.utilization <= 1.0

    def test_steal_events_attribute_victims_and_depths(self):
        _, log, result = run_traced(workers=8)
        steals = log.by_kind(EventKind.STEAL)
        assert steals, "an 8-worker run must steal"
        metrics = worker_metrics(log.events, run=result.run)
        assert sum(m.stolen_from for m in metrics) == len(steals)
        for e in steals:
            assert e.data["victim"] != e.worker
            assert e.data["depth"] >= 0

    def test_event_only_metrics_without_run_result(self):
        _, log, _ = run_traced()
        metrics = worker_metrics(log.events)
        assert sum(m.computes for m in metrics) > 0
        assert all(m.span >= 0 for m in metrics)

    def test_format_is_a_table(self):
        _, log, result = run_traced()
        text = format_worker_metrics(worker_metrics(log.events, run=result.run))
        assert "worker" in text and "steals" in text and "total" in text
        assert len(text.splitlines()) == 4 + 3  # 4 workers + header/rule/total


class TestRecoveryTimeline:
    def test_cascade_reconstruction(self):
        trace, log, _ = run_traced()
        cascades = recovery_timeline(log.events)
        assert cascades
        assert sum(c.recoveries for c in cascades) == trace.total_recoveries
        assert sum(c.scans for c in cascades) == trace.reinit_scans
        assert sum(len(c.reenqueued) for c in cascades) == trace.notify_reinits
        recovered = [c for c in cascades if c.recoveries]
        assert recovered
        for c in recovered:
            assert c.first_fault_t is not None
            assert c.incarnations[0] >= 2  # recoveries install life >= 2
            assert c.completed_t is not None
            assert c.duration is not None and c.duration >= 0

    def test_single_fault_chain_names_successor(self):
        store = BlockStore()
        trace = ExecutionTrace()
        log = EventLog()
        plan = FaultPlan.single(2, "after_notify")
        sched = FTScheduler(chain_graph(5), InlineRuntime(), store=store,
                            hooks=FaultInjector(plan, chain_graph(5), store, trace),
                            trace=trace, event_log=log)
        sched.run()
        cascades = {c.key: c for c in recovery_timeline(log.events)}
        assert 2 in cascades
        assert 3 in cascades[2].reenqueued  # consumer re-enqueued on producer

    def test_format_mentions_tasks_and_counts(self):
        _, log, _ = run_traced()
        text = format_recovery_timeline(recovery_timeline(log.events))
        assert "recoveries:" in text
        assert "re-enqueued" in text

    def test_format_empty(self):
        assert "no faults" in format_recovery_timeline([])
