"""The one-source-of-truth invariant: ExecutionTrace counters must be
derivable from the structured event log, exactly, on every runtime."""

import os

import pytest

from repro.apps import make_app
from repro.core import FTScheduler, NabbitScheduler
from repro.faults import FaultInjector, plan_faults
from repro.faults.model import FaultPlan
from repro.graph.builders import chain_graph, diamond_graph, grid_graph
from repro.memory.blockstore import BlockStore
from repro.obs import EventLog, assert_consistent, replay_summary, verify_consistency
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
from repro.runtime.tracing import ExecutionTrace


def run_ft(spec, runtime, plan=None, store=None):
    store = store if store is not None else BlockStore()
    trace = ExecutionTrace()
    log = EventLog()
    hooks = FaultInjector(plan, spec, store, trace) if plan else None
    sched = FTScheduler(spec, runtime, store=store, hooks=hooks, trace=trace, event_log=log)
    sched.run()
    return sched, trace, log


class TestReplayMatchesTrace:
    def test_fault_free_inline(self):
        _, trace, log = run_ft(grid_graph(5, 5), InlineRuntime())
        assert replay_summary(log.events) == trace.summary()

    def test_faulty_inline(self):
        _, trace, log = run_ft(chain_graph(8), InlineRuntime(),
                               plan=FaultPlan.single(3, "after_compute"))
        assert trace.total_recoveries >= 1
        assert replay_summary(log.events) == trace.summary()

    @pytest.mark.parametrize("phase", ["before_compute", "after_compute", "after_notify"])
    def test_faulty_simulated_all_phases(self, phase):
        app = make_app("cholesky", scale="tiny")
        store = app.make_store(True)
        plan = plan_faults(app, phase=phase, task_type="v=rand", count=2, seed=3)
        _, trace, log = run_ft(app, SimulatedRuntime(workers=4, seed=2), plan=plan, store=store)
        assert trace.faults_injected >= 1
        assert verify_consistency(log.events, trace) == {}

    def test_faulty_threaded(self):
        app = make_app("lu", scale="tiny")
        store = app.make_store(True)
        plan = plan_faults(app, phase="after_compute", task_type="v=rand", count=2, seed=5)
        _, trace, log = run_ft(app, ThreadedRuntime(workers=4, seed=1), plan=plan, store=store)
        assert trace.total_recoveries >= 1
        assert_consistent(log, trace)

    def test_duplicate_recovery_suppression_replayed(self):
        _, trace, log = run_ft(diamond_graph(width=8), SimulatedRuntime(workers=8, seed=1),
                               plan=FaultPlan.single("src", "after_compute"))
        assert replay_summary(log.events) == trace.summary()

    def test_per_key_executions_checked(self):
        _, trace, log = run_ft(chain_graph(6), InlineRuntime(),
                               plan=FaultPlan.single(2, "after_compute"))
        derived = replay_summary(log.events)
        assert derived["max_executions"] == trace.max_executions
        assert derived["reexecutions"] == trace.reexecutions

    def test_nabbit_lifecycle_counters_replay(self):
        spec = grid_graph(4, 4)
        trace = ExecutionTrace()
        log = EventLog()
        NabbitScheduler(spec, InlineRuntime(), trace=trace, event_log=log).run()
        derived = replay_summary(log.events)
        assert derived["total_computes"] == trace.total_computes
        assert derived["notifications"] == trace.notifications


class TestConsistencyDiagnostics:
    def test_verify_reports_mismatch(self):
        _, trace, log = run_ft(chain_graph(4), InlineRuntime())
        trace.count_reset()  # poison the live trace
        diff = verify_consistency(log.events, trace)
        assert "resets" in diff
        assert diff["resets"] == (0, 1)

    def test_assert_consistent_raises_with_detail(self):
        _, trace, log = run_ft(chain_graph(4), InlineRuntime())
        trace.count_stale_frame()
        with pytest.raises(AssertionError, match="stale_frames"):
            assert_consistent(log, trace)

    def test_assert_consistent_refuses_lossy_ring_buffer(self):
        store = BlockStore()
        trace = ExecutionTrace()
        log = EventLog(capacity=5)
        FTScheduler(chain_graph(10), InlineRuntime(), store=store,
                    trace=trace, event_log=log).run()
        assert log.dropped > 0
        with pytest.raises(AssertionError, match="ring buffer"):
            assert_consistent(log, trace)


class TestThreadedStress:
    def test_concurrent_scheduler_emission_is_complete_and_ordered(self):
        """The tentpole stress test: a faulty run on the threaded runtime
        must produce an event log with no lost/duplicated events
        (counters replay exactly) and monotonic per-worker ordering."""
        app = make_app("cholesky", scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type="v=rand", count=3, seed=9)
        # On a single-CPU host the OS may let one worker drain the whole
        # graph before the others wake; the invariants below must hold on
        # every run, but the work-distribution check gets a few attempts.
        for attempt in range(3):
            store = app.make_store(True)
            trace = ExecutionTrace()
            log = EventLog()
            runtime = ThreadedRuntime(workers=8, seed=7, event_log=log)
            FTScheduler(app, runtime, store=store,
                        hooks=FaultInjector(plan, app, store, trace),
                        trace=trace, event_log=log).run()
            app.verify(store)
            events = log.events
            # Completeness: gap-free sequence, counters replay exactly.
            assert [e.seq for e in events] == list(range(len(events)))
            assert verify_consistency(events, trace) == {}
            # Per-worker ordering: each worker's timestamps are
            # nondecreasing in emission order (one wall clock,
            # serialized appends).
            per_worker: dict[int, list[float]] = {}
            for e in events:
                per_worker.setdefault(e.worker, []).append(e.t)
            for w, times in per_worker.items():
                assert times == sorted(times), f"worker {w} emitted out of order"
            if len(per_worker) >= 2:  # work actually distributed
                break
        else:
            if (os.cpu_count() or 1) == 1:
                # One hardware thread: a worker can legitimately drain
                # the whole graph before any sibling gets a GIL slice.
                pytest.skip("work never distributed on a single-CPU host")
            raise AssertionError("work never distributed across workers")
