"""Regression guard: every EventKind member is either replayed into an
ExecutionTrace counter or deliberately listed as ignored -- the runtime
half of the ``eventkind-coverage`` lint."""

from repro.obs.events import EventKind, EventLog
from repro.obs.replay import REPLAY_HANDLED, REPLAY_IGNORED, replay_trace


class TestKindPartition:
    def test_handled_and_ignored_cover_every_kind(self):
        missing = set(EventKind) - (REPLAY_HANDLED | REPLAY_IGNORED)
        assert not missing, (
            f"EventKind members unaccounted for by obs.replay: "
            f"{sorted(k.value for k in missing)} -- route them into a "
            "counter or add them to REPLAY_IGNORED with a rationale"
        )

    def test_no_kind_is_both_handled_and_ignored(self):
        overlap = REPLAY_HANDLED & REPLAY_IGNORED
        assert not overlap, sorted(k.value for k in overlap)

    def test_static_lint_agrees(self):
        """The eventkind-coverage lint checks the same partition from the
        source text; both guards must pass on the shipped package."""
        from repro.verify.lint import ALL_RULES, run_lint

        rules = [r for r in ALL_RULES if r.name == "eventkind-coverage"]
        assert not run_lint(rules=rules)


class TestReplayConsumesHandledKinds:
    def test_replay_accepts_one_event_of_every_kind(self):
        """Replay must not crash on any kind, handled or ignored."""
        log = EventLog()
        for kind in EventKind:
            log.emit(kind, ("t", 1), 1, src=("t", 0))
        trace = replay_trace(log.events)
        assert trace is not None

    def test_ignored_kinds_leave_counters_untouched(self):
        log = EventLog()
        for kind in REPLAY_IGNORED:
            log.emit(kind, ("t", 1), 1)
        baseline = replay_trace([]).__dict__
        replayed = replay_trace(log.events).__dict__
        numeric = {
            k: v for k, v in replayed.items() if isinstance(v, (int, float))
        }
        for name, value in numeric.items():
            assert value == baseline.get(name, 0), f"{name} moved on an ignored kind"
