"""Worker-side spans and the overhead-attribution report, exercised on
real runtimes.

The acceptance bar for the telemetry layer: on a real multi-worker run
(threaded or process pool, with or without injected worker death) the
attribution report must account for >= 95% of the total wall-clock
budget -- because the ``run`` and ``worker_loop`` spans tile the
timeline, unattributed time can only come from missing spans.
"""

import pytest

from repro.apps import make_app
from repro.core import FTScheduler
from repro.faults import FaultInjector, plan_faults
from repro.obs.attribution import (
    CATEGORIES,
    attribute_run,
    format_attribution,
)
from repro.obs.events import EventKind, EventLog
from repro.obs.report import format_recovery_timeline, recovery_timeline
from repro.obs.spans import spans_of, wall_by_phase, wall_by_worker_phase
from repro.obs.top import graph_keys
from repro.runtime import ProcessRuntime, ThreadedRuntime


def run_instrumented(app, runtime, log, plan=None):
    store = app.make_store(True, shared=isinstance(runtime, ProcessRuntime))
    hooks = FaultInjector(plan, app, store) if plan is not None else None
    result = FTScheduler(
        app, runtime, store=store, hooks=hooks, event_log=log
    ).run()
    app.verify(store)
    if isinstance(runtime, ProcessRuntime):
        store.close()
    return result.run


class TestThreadedAttribution:
    def test_coverage_and_span_tiling(self):
        app = make_app("cholesky", scale="default")
        log = EventLog()
        rt = ThreadedRuntime(workers=2, seed=0, event_log=log)
        run = run_instrumented(app, rt, log)

        phases = wall_by_phase(log.events)
        assert "run" in phases, "execute() must emit the budget-window span"
        loops = wall_by_worker_phase(log.events)
        loop_workers = {w for w, d in loops.items() if "worker_loop" in d}
        assert loop_workers == {0, 1}, "every worker emits its loop span"

        report = attribute_run(log.events, run)
        assert report.workers == 2
        assert report.coverage >= 0.95, format_attribution(report)
        assert set(report.categories) == set(CATEGORIES)
        total = sum(report.categories.values())
        assert total == pytest.approx(report.total, rel=1e-6)
        assert len(report.per_worker) == 2
        for wb in report.per_worker:
            assert wb.total == pytest.approx(report.makespan)
            assert sum(wb.categories.values()) == pytest.approx(wb.total, rel=1e-6)

    def test_wasted_work_accounted_under_faults(self):
        app = make_app("lcs", scale="tiny")
        plan = plan_faults(
            app, phase="after_compute", task_type="v=rand", count=2, seed=3
        )
        log = EventLog()
        rt = ThreadedRuntime(workers=2, seed=0, event_log=log)
        run = run_instrumented(app, rt, log, plan=plan)
        report = attribute_run(log.events, run)
        assert report.wasted > 0.0, "faulted incarnations are wasted work"
        assert report.categories["recovery"] >= 0.0
        # Every faulted/replaced life shows up in the per-life table.
        faulted = [
            (e.key, e.life)
            for e in log.events
            if e.kind is EventKind.COMPUTE_FAULT
        ]
        assert any(lk in report.per_life for lk in faulted)


class TestProcpoolAttribution:
    def test_worker_spans_are_worker_attributed(self):
        app = make_app("lcs", scale="tiny")
        log = EventLog()
        rt = ProcessRuntime(workers=2, seed=0, event_log=log)
        run = run_instrumented(app, rt, log)
        spans = spans_of(log.events)
        kernel = [s for s in spans if s.phase == "kernel"]
        assert kernel, "workers ship kernel spans over the result pipe"
        assert {s.worker for s in kernel} <= {0, 1}
        dispatch = [s for s in spans if s.phase == "dispatch"]
        assert len(dispatch) >= len(kernel)

        report = attribute_run(log.events, run)
        assert report.coverage >= 0.95, format_attribution(report)
        assert report.categories["dispatch"] > 0.0
        assert report.dispatch_count == len(dispatch)
        assert report.dispatch_mean > 0.0
        assert report.dispatch_overhead_mean < report.dispatch_mean

    def test_coverage_survives_worker_death(self):
        app = make_app("lcs", scale="tiny")
        log = EventLog()
        rt = ProcessRuntime(workers=2, seed=0, die_on=[(1, 1)], event_log=log)
        run = run_instrumented(app, rt, log)
        assert rt.worker_crashes == 1
        report = attribute_run(log.events, run)
        assert report.coverage >= 0.95, format_attribution(report)
        assert report.categories["recovery"] > 0.0
        assert report.wasted >= 0.0

    def test_recovery_timeline_report_on_die_on_run(self):
        """Satellite: the post-hoc recovery report reconstructs the
        worker-death cascade from a real ProcessRuntime run."""
        app = make_app("cholesky", scale="tiny")
        victims = [k for k in graph_keys(app) if app.predecessors(k)][:2]
        log = EventLog()
        rt = ProcessRuntime(workers=2, seed=0, die_on=victims, event_log=log)
        run_instrumented(app, rt, log)
        assert rt.worker_crashes == len(victims)

        cascades = recovery_timeline(log.events)
        by_key = {c.key: c for c in cascades}
        for key in victims:
            assert key in by_key, f"no cascade for crashed task {key}"
            c = by_key[key]
            assert c.recoveries >= 1, "RECOVERTASKONCE must have re-armed it"
            assert c.first_fault_t is not None
            assert c.completed_t is not None and c.duration >= 0.0
        text = format_recovery_timeline(cascades)
        assert str(victims[0]) in text

    def test_worker_up_pairs_every_worker_down(self):
        """Satellite: each crash emits WORKER_DOWN for the dead pid and a
        WORKER_UP for its replacement, in order, so pool-health timelines
        balance."""
        app = make_app("cholesky", scale="tiny")
        victims = [k for k in graph_keys(app) if app.predecessors(k)][:3]
        log = EventLog()
        rt = ProcessRuntime(workers=2, seed=0, die_on=victims, event_log=log)
        run_instrumented(app, rt, log)

        downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
        ups = [e for e in log.events if e.kind is EventKind.WORKER_UP]
        assert len(downs) == len(ups) == len(victims)
        for down, up in zip(downs, ups):
            assert up.seq > down.seq, "replacement follows the death"
            assert up.data["pid"] != down.data["pid"], "fresh process"
            assert down.data["exitcode"] == 73


class TestSimulatorFallback:
    def test_attribution_degrades_gracefully_without_loop_spans(self):
        """Event streams with no worker_loop/run spans (simulator traces,
        pre-telemetry logs) still produce a report -- unmeasured time
        lands in 'other' and coverage honestly drops, it never crashes."""
        log = EventLog()
        log.emit_at(EventKind.COMPUTE_BEGIN, 0.0, 0, "a", 1)
        log.emit_at(EventKind.COMPUTE_END, 1.0, 0, "a", 1)

        class FakeRun:
            workers = 1
            makespan = 2.0
            busy_time = [1.0]

        report = attribute_run(log.events, FakeRun())
        assert 0.0 <= report.coverage <= 1.0
        assert report.categories["other"] > 0.0
        assert "other" in format_attribution(report)
