"""The ``python -m repro top`` monitor: parser, dashboard rendering,
and a real monitored run driven through ``main()``."""

import pytest

from repro.apps import make_app
from repro.obs.live import MetricsCollector, MetricsRegistry
from repro.obs.top import build_parser, graph_keys, main, render_dashboard


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.app == "cholesky"
        assert args.runtime == "procpool"
        assert args.workers == 4
        assert args.crash == 0 and args.faults == 0
        assert not args.serve and not args.selftest

    def test_monitor_flags(self):
        args = build_parser().parse_args(
            ["lcs", "--runtime", "threaded", "--workers", "2",
             "--crash", "1", "--serve", "--port", "9000", "--plain"]
        )
        assert args.app == "lcs" and args.runtime == "threaded"
        assert args.crash == 1 and args.port == 9000 and args.plain


class TestGraphKeys:
    def test_covers_whole_dag_and_ends_at_sink(self):
        app = make_app("lcs", scale="tiny")
        keys = graph_keys(app)
        assert keys[0] == app.sink_key()
        assert len(keys) == len(set(keys)), "each key exactly once"
        # Reverse BFS from the sink reaches every predecessor.
        for key in keys:
            for pred in app.predecessors(key):
                assert pred in set(keys)


class TestRenderDashboard:
    def test_frame_contains_summary_and_workers(self):
        registry = MetricsRegistry()
        registry.counter("repro_trace_total_computes").inc(12)
        registry.gauge("repro_worker_busy_seconds", worker=0).set(1.5)
        registry.gauge("repro_worker_busy_seconds", worker=1).set(0.5)
        registry.histogram("repro_dispatch_seconds").observe(1e-3)
        collector = MetricsCollector(registry, interval=0.05)
        collector.sample_once()
        frame = render_dashboard(registry, collector, title="unit test")
        assert "unit test" in frame
        assert "computes" in frame
        assert "worker" in frame and "util%" in frame
        assert "dispatch: 1 round trips" in frame

    def test_empty_registry_renders(self):
        registry = MetricsRegistry()
        collector = MetricsCollector(registry, interval=0.05)
        frame = render_dashboard(registry, collector, title="empty")
        assert "empty" in frame


class TestMain:
    def test_plain_threaded_run_exits_zero(self, capsys):
        rc = main(
            ["lcs", "--scale", "tiny", "--runtime", "threaded",
             "--workers", "2", "--plain", "--interval", "0.05"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "wall-clock budget" in out, "attribution tail must print"
        assert "total wall time" in out

    def test_crash_requires_procpool(self, capsys):
        rc = main(
            ["lcs", "--scale", "tiny", "--runtime", "threaded",
             "--crash", "1", "--plain"]
        )
        assert rc != 0

    @pytest.mark.slow
    def test_selftest_passes(self, capsys):
        assert main(["--selftest"]) == 0
        assert "[ok]" in capsys.readouterr().out
