"""End-to-end tests for ``python -m repro trace`` and the exporters.

Covers the acceptance criterion: a faulty Cholesky run via the CLI must
produce a Chrome trace-event JSON with per-worker lanes and recovery
events carrying task key + life number, with event-log-derived counters
matching the live ExecutionTrace.
"""

import json

from repro.__main__ import main as repro_main
from repro.obs.cli import main as trace_main


class TestTraceCLI:
    def test_faulty_cholesky_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = repro_main([
            "trace", "cholesky", "--scale", "tiny", "--workers", "4",
            "--seed", "0", "--chrome", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "verified ok" in printed
        assert "event-log-derived counters match the live trace" in printed

        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        # Per-worker lanes: several tids, each with a thread_name record.
        tids = {e["tid"] for e in events if e["ph"] != "M"}
        assert len(tids) >= 2
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["tid"] for e in names} >= tids
        # Compute slices exist and re-executed incarnations are marked.
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        assert any(e["args"]["life"] > 1 for e in slices)
        # Recovery events carry task key + life number.
        recoveries = [e for e in events if e["ph"] == "i" and e["name"] == "recovery"]
        assert recoveries
        for e in recoveries:
            assert e["args"]["key"]
            assert e["args"]["life"] >= 2
            assert e["cat"] == "recovery"

    def test_jsonl_export_round_trips(self, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        rc = trace_main(["lu", "--scale", "tiny", "--jsonl", str(out)])
        assert rc == 0
        lines = out.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == list(range(len(records)))
        kinds = {r["kind"] for r in records}
        assert "compute_begin" in kinds
        assert "recovery" in kinds
        recovery = next(r for r in records if r["kind"] == "recovery")
        assert recovery["life"] >= 2 and recovery["key"]

    def test_no_faults_run(self, capsys):
        rc = trace_main(["fw", "--scale", "tiny", "--no-faults"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults_injected: 0" in out.replace(" ", " ")

    def test_baseline_scheduler(self, capsys):
        rc = trace_main(["lcs", "--scale", "tiny", "--scheduler", "nabbit"])
        assert rc == 0
        assert "scheduler=nabbit" in capsys.readouterr().out

    def test_threaded_runtime(self, capsys):
        rc = trace_main(["sw", "--scale", "tiny", "--runtime", "threaded", "--workers", "2"])
        assert rc == 0
        assert "verified ok" in capsys.readouterr().out

    def test_inline_runtime_with_report(self, capsys):
        rc = trace_main(["lcs", "--scale", "tiny", "--runtime", "inline", "--report"])
        assert rc == 0
        assert "== event stream ==" in capsys.readouterr().out

    def test_ring_buffer_skips_check(self, capsys):
        rc = trace_main(["lcs", "--scale", "tiny", "--capacity", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ring buffer" in out

    def test_unknown_app_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            trace_main(["nosuchapp"])
