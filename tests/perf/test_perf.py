"""Unit tests for the repro.perf benchmark toolkit: the statistical
runner, the BENCH JSON round-trip/numbering, and the calibrated
regression gate (including its CI-overlap noise guard)."""

import json

import pytest

from repro.perf.bench import (
    Benchmark,
    RunnerConfig,
    bootstrap_ci,
    calibrate,
    median,
    run_benchmark,
    run_suite,
)
from repro.perf.compare import (
    bench_payload,
    compare_runs,
    load_bench_json,
    next_bench_path,
    write_bench_json,
)
from repro.perf.suites import benchmarks, groups


def counting_bench(name="toy", group="g", ops=100):
    return Benchmark(name=name, group=group, make=lambda: (lambda: ops))


class TestStatistics:
    def test_median_odd_even_and_empty(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_bootstrap_ci_brackets_median_and_is_deterministic(self):
        samples = [10.0, 11.0, 9.0, 10.5, 10.2]
        lo, hi = bootstrap_ci(samples, n_boot=500, seed=7)
        assert lo <= median(samples) <= hi
        assert (lo, hi) == bootstrap_ci(samples, n_boot=500, seed=7)

    def test_bootstrap_ci_single_sample_collapses(self):
        assert bootstrap_ci([42.0]) == (42.0, 42.0)


class TestRunner:
    def test_run_benchmark_shapes_the_result(self):
        cfg = RunnerConfig(repeats=3, k=2, warmup=1, bootstrap=100)
        r = run_benchmark(counting_bench(), cfg)
        assert r.name == "toy" and r.group == "g"
        assert len(r.samples) == 3
        assert r.ops_per_batch == 100
        assert r.median > 0
        assert r.ci_lo <= r.median <= r.ci_hi

    def test_fresh_state_per_sample(self):
        """make() must be called once per warmup + per timing, so
        single-use workloads (schedulers) stay honest."""
        calls = []

        def make():
            calls.append(1)
            return lambda: 1

        cfg = RunnerConfig(repeats=2, k=3, warmup=1, bootstrap=50)
        run_benchmark(Benchmark(name="b", group="g", make=make), cfg)
        assert len(calls) == 1 + 2 * 3

    def test_run_suite_preserves_order_and_reports_progress(self):
        seen = []
        benches = [counting_bench(name=f"b{i}") for i in range(3)]
        out = run_suite(benches, RunnerConfig().scaled_down(),
                        progress=lambda name, r: seen.append(name))
        assert list(out) == seen == ["b0", "b1", "b2"]

    def test_calibrate_is_positive(self):
        assert calibrate(loops=10_000, k=1) > 0


class TestBenchJson:
    def _payload(self):
        results = run_suite([counting_bench()], RunnerConfig().scaled_down())
        return bench_payload(results, calibration=1e6,
                             config={"scale": "selftest"}, label="unit")

    def test_round_trip(self, tmp_path):
        payload = self._payload()
        path = write_bench_json(payload, tmp_path / "BENCH_x.json")
        reloaded = load_bench_json(path)
        assert reloaded == json.loads(json.dumps(payload))

    def test_schema_mismatch_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="schema"):
            load_bench_json(p)

    def test_next_bench_path_skips_taken_and_seed(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_seed.json").write_text("{}")  # never counted
        assert next_bench_path(tmp_path).name == "BENCH_2.json"
        (tmp_path / "BENCH_3.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_2.json"


def delta_payload(median, lo, hi, calibration=1.0, hib=True):
    return {
        "schema": 1,
        "calibration": calibration,
        "results": {
            "bench": {
                "unit": "ops/s",
                "higher_is_better": hib,
                "median": median,
                "ci_lo": lo,
                "ci_hi": hi,
            }
        },
    }


class TestRegressionGate:
    def test_identical_runs_pass(self):
        base = delta_payload(100.0, 95.0, 105.0)
        deltas, missing = compare_runs(base, base)
        assert not missing
        assert not any(d.regressed for d in deltas)

    def test_clear_regression_fires(self):
        base = delta_payload(100.0, 99.0, 101.0)
        cur = delta_payload(50.0, 49.0, 51.0)
        (d,), missing = compare_runs(base, cur, threshold=0.15)
        assert d.regressed and d.resolvable
        assert d.ratio == pytest.approx(0.5)

    def test_ci_overlap_is_noise_not_regression(self):
        """A 20% drop whose CI still overlaps the baseline's CI must not
        fail the gate -- unresolvable at this sample size."""
        base = delta_payload(100.0, 70.0, 130.0)
        cur = delta_payload(80.0, 60.0, 100.0)
        (d,), _ = compare_runs(base, cur, threshold=0.15)
        assert not d.resolvable
        assert not d.regressed

    def test_calibration_cancels_machine_speed(self):
        """Half the raw score on a machine with half the calibration
        score is not a regression."""
        base = delta_payload(100.0, 99.0, 101.0, calibration=2.0)
        cur = delta_payload(50.0, 49.5, 50.5, calibration=1.0)
        (d,), _ = compare_runs(base, cur)
        assert d.ratio == pytest.approx(1.0)
        assert not d.regressed

    def test_faster_host_does_not_manufacture_regressions(self):
        """Calibration forgives, never accuses: on a host whose reference
        loop runs 40% faster but whose workload raw score is unchanged,
        the deflated calibrated ratio alone must not fail the gate."""
        base = delta_payload(100.0, 99.0, 101.0, calibration=1.0)
        cur = delta_payload(100.0, 99.0, 101.0, calibration=1.4)
        (d,), _ = compare_runs(base, cur, threshold=0.15)
        assert d.ratio == pytest.approx(1 / 1.4)
        assert d.raw_ratio == pytest.approx(1.0)
        assert not d.regressed

    def test_regression_on_same_host_still_fires(self):
        """The raw-ratio guard must not swallow a real regression when
        the calibration scores agree."""
        base = delta_payload(100.0, 99.0, 101.0, calibration=2.0)
        cur = delta_payload(50.0, 49.0, 51.0, calibration=2.0)
        (d,), _ = compare_runs(base, cur, threshold=0.15)
        assert d.regressed and d.raw_ratio == pytest.approx(0.5)

    def test_lower_is_better_direction(self):
        base = delta_payload(10.0, 9.0, 11.0, hib=False)
        cur = delta_payload(30.0, 29.0, 31.0, hib=False)
        (d,), _ = compare_runs(base, cur)
        assert d.regressed

    def test_dropped_benchmark_is_flagged(self):
        base = delta_payload(100.0, 99.0, 101.0)
        cur = {"schema": 1, "calibration": 1.0, "results": {}}
        deltas, missing = compare_runs(base, cur)
        assert missing == ["bench"]
        assert not deltas


class TestSuiteRegistry:
    def test_names_unique_and_scales_agree(self):
        default = benchmarks("default")
        selftest = benchmarks("selftest")
        names = [b.name for b in default]
        assert len(names) == len(set(names))
        assert names == [b.name for b in selftest]

    def test_acceptance_benchmarks_present(self):
        names = {b.name for b in benchmarks("default")}
        assert "sim_events_per_sec" in names
        assert "sched_tasks_per_sec_tracing_off" in names

    def test_groups_partition_the_suite(self):
        benches = benchmarks("selftest")
        grouped = groups(benches)
        assert sum(len(v) for v in grouped.values()) == len(benches)
        for group, members in grouped.items():
            assert all(b.group == group for b in members)

    def test_every_selftest_benchmark_executes(self):
        """Each benchmark's make() must produce a runnable batch at the
        shrunken scale (the CI smoke path)."""
        for b in benchmarks("selftest"):
            batch = b.make()
            assert batch() > 0, b.name
