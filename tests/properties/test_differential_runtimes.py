"""Differential testing: the three runtimes must agree.

The scheduler's result must be independent of the executor: the serial
inline runtime (oracle), the discrete-event simulator at any worker
count/seed, and the real threaded pool must produce identical block
stores and identical per-task execution multisets for the same graph and
fault plan (determinized by the a-priori injector).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FTScheduler
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.builders import random_dag
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime import InlineRuntime, SimulatedRuntime, ThreadedRuntime
from repro.runtime.tracing import ExecutionTrace

PHASES = [FaultPhase.BEFORE_COMPUTE, FaultPhase.AFTER_COMPUTE, FaultPhase.AFTER_NOTIFY]


def run_on(runtime, spec, plan):
    store = BlockStore()
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, spec, store, trace) if plan else None
    FTScheduler(spec, runtime, store=store, hooks=hooks, trace=trace).run()
    return store, trace


def store_snapshot(spec, store):
    """Every resident block value (the graphs' values are tuples, so
    snapshots compare exactly)."""
    return {ref: store.peek(ref) for ref in store.refs()}


@st.composite
def cases(draw):
    n = draw(st.integers(3, 24))
    spec = random_dag(
        n,
        edge_prob=draw(st.floats(0.1, 0.5)),
        seed=draw(st.integers(0, 2000)),
    )
    victims = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.sampled_from(PHASES)),
            max_size=4,
            unique_by=lambda t: t[0],
        )
    )
    events = [
        FaultEvent(k, p, corrupt_outputs=p is not FaultPhase.BEFORE_COMPUTE)
        for k, p in victims
    ]
    plan = FaultPlan(events=events, implied_reexecutions=len(events)) if events else None
    return spec, plan


class TestInlineVsSimulated:
    @given(cases(), st.sampled_from([1, 3, 8]), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_identical_stores(self, case, workers, seed):
        spec, plan = case
        ref_store, _ = run_on(InlineRuntime(), spec, plan)
        sim_store, _ = run_on(SimulatedRuntime(workers=workers, seed=seed), spec, plan)
        assert store_snapshot(spec, sim_store) == store_snapshot(spec, ref_store)

    @given(cases())
    @settings(max_examples=30, deadline=None)
    def test_identical_sink(self, case):
        spec, plan = case
        a, _ = run_on(InlineRuntime(), spec, plan)
        b, _ = run_on(SimulatedRuntime(workers=5, seed=7), spec, plan)
        key = BlockRef(spec.sink_key(), 0)
        assert a.peek(key) == b.peek(key)


class TestThreadedAgreement:
    @pytest.mark.parametrize("rep", range(3))
    def test_threaded_matches_inline_with_faults(self, rep):
        spec = random_dag(30, edge_prob=0.25, seed=rep)
        events = [
            FaultEvent(5, FaultPhase.AFTER_COMPUTE),
            FaultEvent(11, FaultPhase.AFTER_NOTIFY),
            FaultEvent(17, FaultPhase.BEFORE_COMPUTE, corrupt_outputs=False),
        ]
        plan = FaultPlan(events=events, implied_reexecutions=3)
        ref_store, _ = run_on(InlineRuntime(), spec, plan)
        thr_store, _ = run_on(ThreadedRuntime(workers=6, seed=rep), spec, plan)
        key = BlockRef(spec.sink_key(), 0)
        assert thr_store.peek(key) == ref_store.peek(key)
