"""Property-based tests on graph analytics."""

from hypothesis import given, settings, strategies as st

from repro.graph.analysis import collect_tasks, graph_stats, topological_order, work_and_span
from repro.graph.builders import random_dag
from repro.graph.validate import validate_spec


@st.composite
def dags(draw):
    n = draw(st.integers(1, 40))
    return random_dag(
        n,
        edge_prob=draw(st.floats(0.0, 0.6)),
        seed=draw(st.integers(0, 10_000)),
    )


class TestStructuralProperties:
    @given(dags())
    @settings(max_examples=80, deadline=None)
    def test_random_dags_always_validate(self, spec):
        assert validate_spec(spec) == len(spec)

    @given(dags())
    @settings(max_examples=80, deadline=None)
    def test_topological_order_is_valid(self, spec):
        order = topological_order(spec)
        assert len(order) == len(spec)
        pos = {k: i for i, k in enumerate(order)}
        for k in order:
            for p in spec.predecessors(k):
                assert pos[p] < pos[k]

    @given(dags())
    @settings(max_examples=80, deadline=None)
    def test_stats_internally_consistent(self, spec):
        st_ = graph_stats(spec)
        assert st_.tasks == len(collect_tasks(spec))
        assert st_.sources >= 1
        assert 0 <= st_.critical_path < st_.tasks
        assert st_.span_cost <= st_.total_cost
        assert st_.max_degree >= 1 or st_.tasks == 1

    @given(dags(), st.integers(0, 39), st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_work_monotone_in_executions(self, spec, victim_idx, count):
        tasks = collect_tasks(spec)
        victim = tasks[victim_idx % len(tasks)]
        t1a, sa = work_and_span(spec)
        t1b, sb = work_and_span(spec, {victim: count})
        assert t1b > t1a
        assert sb >= sa

    @given(dags())
    @settings(max_examples=60, deadline=None)
    def test_span_at_most_work(self, spec):
        t1, t_inf = work_and_span(spec)
        assert t_inf <= t1 + 1e-9
