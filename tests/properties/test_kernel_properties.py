"""Property-based tests on the numerical kernels.

The blocked decompositions are only correct if the kernels compose: the
DP kernels must give identical boundaries whether a region is processed
as one block or as two stitched blocks, and the linear-algebra tile
kernels must agree with whole-matrix factorizations.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.apps.kernels import (
    fw_diag,
    fw_minplus,
    fw_panel_col,
    fw_panel_row,
    lcs_block,
    lu_getrf,
    sw_block,
)

seqs = lambda lo, hi: hnp.arrays(
    np.int8, st.integers(lo, hi), elements=st.integers(0, 3)
)


class TestLCSComposition:
    @given(x=seqs(2, 16), y=seqs(2, 16), split=st.integers(1, 15))
    @settings(max_examples=80, deadline=None)
    def test_horizontal_split_matches_monolithic(self, x, y, split):
        split = min(split, len(y) - 1)
        zt = np.zeros(len(y), np.int32)
        zl = np.zeros(len(x), np.int32)
        bottom, right = lcs_block(x, y, zt, zl, 0)
        # Process the same region as [left | right] blocks.
        b1, r1 = lcs_block(x, y[:split], zt[:split], zl, 0)
        b2, r2 = lcs_block(x, y[split:], zt[split:], r1, 0)
        np.testing.assert_array_equal(np.concatenate([b1, b2]), bottom)
        np.testing.assert_array_equal(r2, right)

    @given(x=seqs(2, 16), y=seqs(2, 16), split=st.integers(1, 15))
    @settings(max_examples=80, deadline=None)
    def test_vertical_split_matches_monolithic(self, x, y, split):
        split = min(split, len(x) - 1)
        zt = np.zeros(len(y), np.int32)
        zl = np.zeros(len(x), np.int32)
        bottom, right = lcs_block(x, y, zt, zl, 0)
        b1, r1 = lcs_block(x[:split], y, zt, zl[:split], 0)
        b2, r2 = lcs_block(x[split:], y, b1, zl[split:], 0)
        np.testing.assert_array_equal(b2, bottom)
        np.testing.assert_array_equal(np.concatenate([r1, r2]), right)

    @given(x=seqs(1, 12), y=seqs(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_lcs_bounded_and_monotone(self, x, y):
        bottom, right = lcs_block(
            x, y, np.zeros(len(y), np.int32), np.zeros(len(x), np.int32), 0
        )
        assert 0 <= bottom[-1] <= min(len(x), len(y))
        assert (np.diff(bottom) >= 0).all()
        assert (np.diff(right) >= 0).all()


class TestSWProperties:
    @given(x=seqs(1, 12), y=seqs(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_scores_nonnegative_and_max_consistent(self, x, y):
        bottom, right, mx = sw_block(
            x, y, np.zeros(len(y), np.int32), np.zeros(len(x), np.int32), 0
        )
        assert (bottom >= 0).all() and (right >= 0).all()
        assert mx >= max(bottom.max(initial=0), right.max(initial=0))

    @given(x=seqs(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_self_alignment_scores_full_match(self, x):
        _, _, mx = sw_block(
            x, x, np.zeros(len(x), np.int32), np.zeros(len(x), np.int32), 0
        )
        assert mx >= 2 * len(x)  # match score = 2 per position


dist_blocks = hnp.arrays(
    np.float64, (5, 5), elements=st.floats(0.5, 20.0, allow_nan=False)
)


class TestFWProperties:
    @given(d=dist_blocks)
    @settings(max_examples=60, deadline=None)
    def test_diag_idempotent(self, d):
        np.fill_diagonal(d, 0.0)
        once = fw_diag(d)
        np.testing.assert_allclose(fw_diag(once), once)

    @given(d=dist_blocks)
    @settings(max_examples=60, deadline=None)
    def test_updates_never_increase(self, d):
        np.fill_diagonal(d, 0.0)
        new = fw_diag(d)
        assert (new <= d + 1e-12).all()
        a = np.abs(d) + 1.0
        assert (fw_minplus(d, a, a) <= d + 1e-12).all()
        assert (fw_panel_row(new, d) <= d + 1e-12).all()
        assert (fw_panel_col(new, d) <= d + 1e-12).all()

    @given(d=dist_blocks)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality_after_diag(self, d):
        np.fill_diagonal(d, 0.0)
        out = fw_diag(d)
        n = out.shape[0]
        for t in range(n):
            assert (out <= out[:, t, None] + out[None, t, :] + 1e-9).all()


class TestLUProperties:
    @given(
        a=hnp.arrays(np.float64, (6, 6), elements=st.floats(-1, 1, allow_nan=False))
    )
    @settings(max_examples=60, deadline=None)
    def test_getrf_reconstructs_dd_matrices(self, a):
        a = a + 12.0 * np.eye(6)
        lu = lu_getrf(a)
        l = np.tril(lu, -1) + np.eye(6)
        u = np.triu(lu)
        np.testing.assert_allclose(l @ u, a, rtol=1e-9, atol=1e-9)
