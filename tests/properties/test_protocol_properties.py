"""Property tests of the two G1/G3 atomic primitives under contention:
``RecoveryTable.check_and_claim`` admits exactly one recovery owner per
(key, life), and ``TaskRecord.try_unset_bit`` grants each notification
bit exactly once per arming."""

import threading

from hypothesis import given, settings, strategies as st

from repro.core.records import TaskRecord
from repro.core.recovery_table import RecoveryTable


def race(n_threads, fn):
    """Run ``fn(i)`` on n_threads threads through a start barrier; return
    the list of results."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads

    def runner(i):
        barrier.wait()
        results[i] = fn(i)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


class TestCheckAndClaim:
    @given(lives=st.lists(st.integers(1, 6), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_sequential_semantics_match_the_paper_cas(self, lives):
        """claim(key, L) wins iff the table holds nothing or exactly L-1."""
        table = RecoveryTable()
        model = None
        for life in lives:
            won = table.check_and_claim("k", life)
            expected = model is None or model == life - 1
            assert won == expected
            if expected:
                model = life
            assert table.recovering_life("k") == model

    @given(n_threads=st.integers(2, 8), life=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_exactly_one_winner_per_incarnation(self, n_threads, life):
        table = RecoveryTable()
        if life > 1:
            assert table.check_and_claim("k", life - 1)
        wins = race(n_threads, lambda i: table.check_and_claim("k", life))
        assert sum(wins) == 1
        assert table.claims == (2 if life > 1 else 1)
        assert table.rejections == n_threads - 1

    @given(n_threads=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_independent_keys_do_not_interfere(self, n_threads):
        table = RecoveryTable()
        wins = race(n_threads, lambda i: table.check_and_claim(f"k{i}", 1))
        assert all(wins)


class TestTryUnsetBit:
    @given(n_preds=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_each_bit_granted_once_per_arming(self, n_preds):
        rec = TaskRecord("k", n_preds)
        for bit in range(n_preds + 1):
            assert rec.try_unset_bit(bit)
            assert not rec.try_unset_bit(bit)
        assert rec.bit_vector == 0

    @given(n_preds=st.integers(0, 8), n_threads=st.integers(2, 6), bit=st.integers(0, 8))
    @settings(max_examples=25, deadline=None)
    def test_concurrent_claimants_one_winner_under_lock(self, n_preds, n_threads, bit):
        """Model the scheduler's discipline: callers hold ``rec.lock``
        around the bit test (verify/lint's lock-discipline rule enforces
        this in core/); exactly one claimant per bit may win."""
        bit = bit % (n_preds + 1)
        rec = TaskRecord("k", n_preds)

        def claim(_i):
            with rec.lock:
                return rec.try_unset_bit(bit)

        wins = race(n_threads, claim)
        assert sum(wins) == 1

    @given(n_preds=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_reset_for_reuse_rearms_every_bit(self, n_preds):
        rec = TaskRecord("k", n_preds)
        for bit in range(n_preds + 1):
            rec.try_unset_bit(bit)
        rec.reset_for_reuse()
        assert rec.bit_vector == (1 << (n_preds + 1)) - 1
        assert rec.join == n_preds + 1
        for bit in range(n_preds + 1):
            assert rec.try_unset_bit(bit)
