"""Property-based tests of the DESIGN.md correctness invariants P1-P7 on
random DAGs with random fault plans."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FTScheduler, TaskStatus, run_scheduler
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultEvent, FaultPhase, FaultPlan
from repro.graph.builders import random_dag
from repro.graph.taskspec import BlockRef
from repro.memory.blockstore import BlockStore
from repro.runtime import SimulatedRuntime
from repro.runtime.tracing import ExecutionTrace

PHASES = [FaultPhase.BEFORE_COMPUTE, FaultPhase.AFTER_COMPUTE, FaultPhase.AFTER_NOTIFY]


@st.composite
def dag_and_plan(draw):
    n = draw(st.integers(4, 30))
    seed = draw(st.integers(0, 10_000))
    prob = draw(st.floats(0.05, 0.5))
    spec = random_dag(n, edge_prob=prob, seed=seed)
    victims = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.sampled_from(PHASES)),
            max_size=6,
            unique_by=lambda t: t[0],
        )
    )
    events = [
        FaultEvent(key, phase, corrupt_outputs=phase is not FaultPhase.BEFORE_COMPUTE)
        for key, phase in victims
    ]
    plan = FaultPlan(events=events, implied_reexecutions=len(events))
    workers = draw(st.sampled_from([1, 2, 5]))
    steal_seed = draw(st.integers(0, 1000))
    return spec, plan, workers, steal_seed


class TestFaultInjectionProperties:
    @given(dag_and_plan())
    @settings(max_examples=60, deadline=None)
    def test_p2_p3_completion_and_identical_results(self, case):
        """P2: the sink completes under any fault plan.  P3: the final
        output equals the fault-free output."""
        spec, plan, workers, steal_seed = case
        expected = run_scheduler(spec).store.peek(BlockRef(spec.sink_key(), 0))

        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(plan, spec, store, trace)
        sched = FTScheduler(
            spec, SimulatedRuntime(workers=workers, seed=steal_seed),
            store=store, hooks=injector, trace=trace,
        )
        sched.run()  # raises on hang (P2)
        assert store.peek(BlockRef(spec.sink_key(), 0)) == expected

    @given(dag_and_plan())
    @settings(max_examples=60, deadline=None)
    def test_p5_each_incarnation_recovered_at_most_once(self, case):
        spec, plan, workers, steal_seed = case
        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(plan, spec, store, trace)
        sched = FTScheduler(
            spec, SimulatedRuntime(workers=workers, seed=steal_seed),
            store=store, hooks=injector, trace=trace,
        )
        sched.run()
        # Per key, recoveries never exceed the number of life-1 faults
        # that could be observed (here: one planned fault per victim).
        for key, count in trace.recoveries.items():
            assert count <= 1, f"{key} recovered {count} times for one fault"

    @given(dag_and_plan())
    @settings(max_examples=40, deadline=None)
    def test_p1_no_compute_before_predecessors(self, case):
        """P1: tasks only compute after all predecessor outputs exist --
        enforced here by the strict context + default compute reading
        every input; a violation would raise inside run()."""
        spec, plan, workers, steal_seed = case
        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(plan, spec, store, trace)
        FTScheduler(
            spec, SimulatedRuntime(workers=workers, seed=steal_seed),
            store=store, hooks=injector, trace=trace,
        ).run()
        # Every task computed at least once, statuses all COMPLETED.
        assert trace.tasks_computed == len(spec)

    @given(dag_and_plan())
    @settings(max_examples=40, deadline=None)
    def test_p7_after_compute_reexecution_matches_victims(self, case):
        """P7: for single-assignment graphs, after-compute faults cause
        exactly one re-execution per *observed* victim and before-compute
        faults none."""
        spec, plan, workers, steal_seed = case
        only_compute_phases = [
            e for e in plan if e.phase is not FaultPhase.AFTER_NOTIFY
        ]
        if len(only_compute_phases) != len(plan.events):
            return  # property specific to pre-notify phases
        store = BlockStore()
        trace = ExecutionTrace()
        injector = FaultInjector(plan, spec, store, trace)
        FTScheduler(
            spec, SimulatedRuntime(workers=workers, seed=steal_seed),
            store=store, hooks=injector, trace=trace,
        ).run()
        after = sum(1 for e in injector.fired if e.phase is FaultPhase.AFTER_COMPUTE)
        assert trace.reexecutions == after


class TestNoFaultProperties:
    @given(
        n=st.integers(2, 40),
        seed=st.integers(0, 5000),
        prob=st.floats(0.0, 0.6),
        workers=st.sampled_from([1, 3, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_p6_ft_equals_baseline(self, n, seed, prob, workers):
        spec = random_dag(n, edge_prob=prob, seed=seed)
        base = run_scheduler(
            spec, runtime=SimulatedRuntime(workers=workers, seed=1), fault_tolerant=False
        )
        ft = run_scheduler(
            spec, runtime=SimulatedRuntime(workers=workers, seed=1), fault_tolerant=True
        )
        key = BlockRef(spec.sink_key(), 0)
        assert ft.store.peek(key) == base.store.peek(key)
        assert ft.trace.executions() == base.trace.executions()
        assert ft.trace.max_executions == 1
