"""Property-based tests on the discrete-event simulator's invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame
from repro.runtime.simulator import SimulatedRuntime

CM = CostModel(frame_overhead=1.0, spawn_cost=0.0, steal_cost=2.0,
               failed_steal_cost=1.0, lock_cost=0.0, atomic_cost=0.0)


@st.composite
def workloads(draw):
    """A two-level fan-out with arbitrary child costs."""
    costs = draw(st.lists(st.floats(0.5, 200.0), min_size=1, max_size=40))
    grandchildren = draw(st.integers(0, 3))
    return costs, grandchildren


def build_root(rt, costs, grandchildren):
    def child(c):
        rt.charge(c)
        for _ in range(grandchildren):
            rt.spawn(lambda: rt.charge(c / 2.0))

    def root():
        for c in costs:
            rt.spawn(lambda c=c: child(c))

    return Frame(root)


class TestConservationLaws:
    @given(workloads(), st.sampled_from([1, 2, 5, 9]), st.integers(0, 50))
    @settings(max_examples=80, deadline=None)
    def test_busy_time_equals_total_charged_work(self, wl, workers, seed):
        costs, gc = wl
        rt = SimulatedRuntime(workers=workers, cost_model=CM, seed=seed)
        res = rt.execute(build_root(rt, costs, gc))
        expected = (
            1.0  # root frame overhead
            + sum(c + 1.0 for c in costs)
            + sum(gc * (c / 2.0 + 1.0) for c in costs)
        )
        assert sum(res.busy_time) == pytest.approx(expected)

    @given(workloads(), st.sampled_from([2, 5, 9]), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, wl, workers, seed):
        costs, gc = wl
        rt = SimulatedRuntime(workers=workers, cost_model=CM, seed=seed)
        res = rt.execute(build_root(rt, costs, gc))
        total_work = sum(res.busy_time)
        # Lower bound: perfect parallelism over charged work.
        assert res.makespan >= total_work / workers - 1e-9
        # Lower bound: the longest serial chain (root -> child -> grandchild).
        span = 1.0 + max((c + 1.0) + (gc > 0) * (c / 2.0 + 1.0) for c in costs)
        assert res.makespan >= span - 1e-9
        # Upper bound: never slower than one worker doing everything plus
        # steal traffic.
        steal_tax = (res.steals + res.failed_steals) * 10.0
        assert res.makespan <= total_work + steal_tax + 1e-6

    @given(workloads(), st.sampled_from([1, 4]), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_frame_count_exact(self, wl, workers, seed):
        costs, gc = wl
        rt = SimulatedRuntime(workers=workers, cost_model=CM, seed=seed)
        res = rt.execute(build_root(rt, costs, gc))
        assert res.frames == 1 + len(costs) * (1 + gc)

    @given(workloads(), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, wl, seed):
        costs, gc = wl

        def run():
            rt = SimulatedRuntime(workers=6, cost_model=CM, seed=seed)
            res = rt.execute(build_root(rt, costs, gc))
            return res.makespan, res.steals, res.failed_steals, tuple(res.busy_time)

        assert run() == run()

    @given(workloads(), st.sampled_from(["round_robin", "richest"]))
    @settings(max_examples=30, deadline=None)
    def test_policies_conserve_work(self, wl, policy):
        costs, gc = wl
        rt = SimulatedRuntime(workers=5, cost_model=CM, seed=1, steal_policy=policy)
        res = rt.execute(build_root(rt, costs, gc))
        rt2 = SimulatedRuntime(workers=5, cost_model=CM, seed=1)
        res2 = rt2.execute(build_root(rt2, costs, gc))
        assert sum(res.busy_time) == pytest.approx(sum(res2.busy_time))
