"""Model-based (stateful) property tests for the protocol primitives.

Hypothesis drives random operation sequences against the real
implementations while a trivially correct Python model runs alongside;
any divergence is a protocol bug.  These are the components whose
correctness the recovery guarantees lean on: the task map's life
numbers, the recovery table's claim semantics, and the block store's
retention ring.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.recovery_table import RecoveryTable
from repro.core.taskmap import TaskMap
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import KeepK
from repro.memory.blockstore import BlockStore

KEYS = st.sampled_from(["a", "b", "c", "d"])


class TaskMapMachine(RuleBasedStateMachine):
    """Model: dict key -> (life, record identity token)."""

    def __init__(self):
        super().__init__()
        self.map = TaskMap(n_preds_of=lambda k: 2)
        self.model: dict[str, int] = {}

    @rule(key=KEYS)
    def insert(self, key):
        rec, life, inserted = self.map.insert_if_absent(key)
        if key in self.model:
            assert not inserted
            assert life == self.model[key]
        else:
            assert inserted
            assert life == 1
            self.model[key] = 1
        assert rec.life == self.model[key]

    @rule(key=KEYS)
    def replace(self, key):
        if key not in self.model:
            return
        rec, life = self.map.replace(key)
        self.model[key] += 1
        assert life == self.model[key]
        assert rec.join == 3 and rec.bit_vector == 0b111  # fresh state

    @rule(key=KEYS)
    def get(self, key):
        rec, life = self.map.get(key)
        if key in self.model:
            assert life == self.model[key]
            assert rec is not None and rec.life == life
        else:
            assert rec is None and life == 0

    @invariant()
    def sizes_agree(self):
        assert len(self.map) == len(self.model)


class RecoveryTableMachine(RuleBasedStateMachine):
    """Model invariant: for each key, exactly one claim per claimed life,
    and claimed lives advance without gaps."""

    def __init__(self):
        super().__init__()
        self.table = RecoveryTable()
        self.claimed: dict[str, int] = {}

    @rule(key=KEYS, life=st.integers(1, 6))
    def claim(self, key, life):
        won = self.table.check_and_claim(key, life)
        prev = self.claimed.get(key)
        if prev is None:
            # First-ever failure of this key: any life may claim.
            assert won
            self.claimed[key] = life
        elif life == prev + 1:
            assert won
            self.claimed[key] = life
        else:
            # Same, older, or gap-skipping life: never claims.
            assert not won

    @invariant()
    def table_view_matches_model(self):
        for key, life in self.claimed.items():
            assert self.table.recovering_life(key) == life


class BlockStoreMachine(RuleBasedStateMachine):
    """Model: per-block ordered list of the last ``keep`` written
    versions with their values and corruption flags."""

    KEEP = 2

    def __init__(self):
        super().__init__()
        self.store = BlockStore(KeepK(self.KEEP))
        self.model: dict[str, list[tuple[int, object, bool]]] = {}

    @rule(block=KEYS, version=st.integers(0, 4))
    def write(self, block, version):
        value = object()
        self.store.write(BlockRef(block, version), value)
        ring = [e for e in self.model.get(block, []) if e[0] != version]
        ring.append((version, value, False))
        self.model[block] = ring[-self.KEEP:]

    @rule(block=KEYS, version=st.integers(0, 4))
    def corrupt(self, block, version):
        hit = self.store.mark_corrupted(BlockRef(block, version))
        ring = self.model.get(block, [])
        model_hit = any(v == version for v, _, _ in ring)
        assert hit == model_hit
        self.model[block] = [
            (v, d, True if v == version else c) for v, d, c in ring
        ]

    @invariant()
    def reads_match_model(self):
        for block, ring in self.model.items():
            assert self.store.resident_versions(block) == tuple(v for v, _, _ in ring)
            for version, value, corrupted in ring:
                status = self.store.status_of(BlockRef(block, version))
                assert status == ("corrupted" if corrupted else "ok")
                if not corrupted:
                    assert self.store.read(BlockRef(block, version)) is value


TestTaskMapModel = TaskMapMachine.TestCase
TestRecoveryTableModel = RecoveryTableMachine.TestCase
TestBlockStoreModel = BlockStoreMachine.TestCase

for case in (TestTaskMapModel, TestRecoveryTableModel, TestBlockStoreModel):
    case.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
