"""Property-based tests for the block store's retention invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DataCorruptionError, OverwrittenError
from repro.graph.taskspec import BlockRef
from repro.memory.allocator import KeepK, SingleAssignment
from repro.memory.blockstore import BlockStore

ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "corrupt", "pin"]),
        st.integers(0, 3),   # block id
        st.integers(0, 6),   # version
    ),
    max_size=60,
)


class TestRetentionInvariants:
    @given(ops=ops, keep=st.integers(1, 3))
    @settings(max_examples=120, deadline=None)
    def test_resident_count_bounded_by_keep(self, ops, keep):
        store = BlockStore(KeepK(keep))
        for op, block, version in ops:
            ref = BlockRef(block, version)
            if op == "write":
                store.write(ref, (block, version))
            elif op == "corrupt":
                store.mark_corrupted(ref)
            else:
                store.pin(ref, "pinned")
        for block in store.blocks():
            assert len(store.resident_versions(block)) <= keep

    @given(ops=ops)
    @settings(max_examples=120, deadline=None)
    def test_single_assignment_never_evicts(self, ops):
        store = BlockStore(SingleAssignment())
        written = set()
        for op, block, version in ops:
            ref = BlockRef(block, version)
            if op == "write":
                store.write(ref, (block, version))
                written.add(ref)
        for ref in written:
            assert store.status_of(ref) in ("ok", "corrupted")

    @given(ops=ops, keep=st.integers(1, 3))
    @settings(max_examples=120, deadline=None)
    def test_read_returns_last_write_or_raises(self, ops, keep):
        store = BlockStore(KeepK(keep))
        last: dict[BlockRef, object] = {}
        corrupted: set[BlockRef] = set()
        pinned: set[BlockRef] = set()
        for op, block, version in ops:
            ref = BlockRef(block, version)
            if op == "write":
                value = object()
                store.write(ref, value)
                last[ref] = value
                corrupted.discard(ref)
            elif op == "corrupt":
                if store.mark_corrupted(ref):
                    corrupted.add(ref)
            else:
                store.pin(ref, "P")
                pinned.add(ref)
        for ref, value in last.items():
            status = store.status_of(ref)
            if ref in pinned:
                assert store.read(ref) == "P"
            elif status == "ok":
                assert store.read(ref) is value
            elif status == "corrupted":
                assert ref in corrupted
                with pytest.raises(DataCorruptionError):
                    store.read(ref)
            else:
                with pytest.raises(OverwrittenError):
                    store.read(ref)

    @given(ops=ops, keep=st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_rewrite_clears_corruption(self, ops, keep):
        store = BlockStore(KeepK(keep))
        for op, block, version in ops:
            ref = BlockRef(block, version)
            if op == "write":
                store.write(ref, 1)
            elif op == "corrupt":
                store.mark_corrupted(ref)
            store.write(ref, 2)
            assert store.read(ref) == 2
