"""Contended property tests for the lock-striped structures.

The sharded :class:`TaskMap` and :class:`RecoveryTable` replace a single
mutex with ``hash(key) % n_stripes`` stripe locks plus lock-free read
paths, so the exactly-once guarantees the schedulers lean on must now be
re-proven *under contention*: with >= 8 threads racing through a start
barrier, exactly one caller per key observes ``inserted=True`` from
``insert_if_absent`` (Guarantee-1 insert side) and at most one caller
per (key, life) wins ``check_and_claim`` (Guarantee-3 recovery side).
Integer keys are used deliberately: ``hash(int) == int`` in CPython, so
``k`` and ``k + n_stripes`` provably collide on one stripe, exercising
both same-stripe serialization and cross-stripe parallelism.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.core.recovery_table import RecoveryTable
from repro.core.taskmap import TaskMap

N_THREADS = 8  # the contention floor every racing test must meet


def race(n_threads, fn):
    """Run ``fn(i)`` on n_threads threads through a start barrier; return
    the list of results."""
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads

    def runner(i):
        barrier.wait()
        results[i] = fn(i)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


class TestStripedTaskMapInsert:
    @given(n_threads=st.integers(N_THREADS, 16), n_stripes=st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_exactly_one_inserter_per_key(self, n_threads, n_stripes):
        """All threads hammer one key: one ``inserted=True``, everyone
        sees the same fully initialized record at life 1."""
        tmap = TaskMap(lambda key: 3, n_stripes=n_stripes)
        results = race(n_threads, lambda i: tmap.insert_if_absent("k"))
        assert sum(inserted for _, _, inserted in results) == 1
        records = {id(rec) for rec, _, _ in results}
        assert len(records) == 1, "racing inserters saw different records"
        assert all(life == 1 for _, life, _ in results)
        assert tmap.inserts == 1
        assert len(tmap) == 1

    @given(
        n_threads=st.integers(N_THREADS, 12),
        n_keys=st.integers(1, 6),
        n_stripes=st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_thread_inserts_every_key(self, n_threads, n_keys, n_stripes):
        """All threads sweep the same key set (integer keys force stripe
        collisions for any n_stripes < n_keys): per key, exactly one
        winner across the whole race."""
        tmap = TaskMap(lambda key: 1, n_stripes=n_stripes)
        keys = list(range(n_keys))

        def sweep(i):
            # Stagger start offsets so threads collide on different keys.
            wins = []
            for j in range(n_keys):
                key = keys[(i + j) % n_keys]
                _, _, inserted = tmap.insert_if_absent(key)
                if inserted:
                    wins.append(key)
            return wins

        results = race(n_threads, sweep)
        all_wins = [k for wins in results for k in wins]
        assert sorted(all_wins) == keys, "a key was inserted twice or never"
        assert tmap.inserts == n_keys
        assert len(tmap) == n_keys

    @given(n_threads=st.integers(N_THREADS, 12))
    @settings(max_examples=20, deadline=None)
    def test_lock_free_get_is_consistent_under_racing_inserts(self, n_threads):
        """Half the threads insert, half read lock-free: every non-None
        ``get`` must return an internally consistent ``(rec, rec.life)``
        pair with the record fully initialized."""
        tmap = TaskMap(lambda key: 5)

        def work(i):
            if i % 2 == 0:
                return tmap.insert_if_absent("k")
            rec, life = tmap.get("k")
            if rec is None:
                return None
            # Published-fully-initialized: join/bits are armed, and the
            # pair is consistent because life is immutable per record.
            return (rec.life == life, rec.join, rec.bit_vector)

        results = race(n_threads, work)
        for r in results:
            if isinstance(r, tuple) and isinstance(r[0], bool):
                consistent, join, bits = r
                assert consistent
                assert join == 6  # 5 preds + self bit, armed at construction
                assert bits == (1 << 6) - 1

    @given(n_replaces=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_concurrent_replace_of_distinct_keys_keeps_per_key_lives(self, n_replaces):
        """Threads replacing *different* keys in parallel never perturb
        each other's life sequences, even when keys share a stripe."""
        tmap = TaskMap(lambda key: 0, n_stripes=4)
        for key in range(N_THREADS):
            tmap.insert_if_absent(key)  # keys 0..7 over 4 stripes: collisions

        def churn(i):
            lives = []
            for _ in range(n_replaces):
                _, life = tmap.replace(i)
                lives.append(life)
            return lives

        results = race(N_THREADS, churn)
        for lives in results:
            assert lives == list(range(2, 2 + n_replaces))
        assert tmap.replacements == N_THREADS * n_replaces


class TestStripedRecoveryTableClaim:
    @given(n_threads=st.integers(N_THREADS, 16), n_stripes=st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_at_most_one_recovery_owner_per_incarnation(self, n_threads, n_stripes):
        table = RecoveryTable(n_stripes=n_stripes)
        wins = race(n_threads, lambda i: table.check_and_claim("k", 1))
        assert sum(wins) == 1
        assert table.claims == 1
        assert table.rejections == n_threads - 1
        assert table.recovering_life("k") == 1

    @given(n_threads=st.integers(N_THREADS, 12), n_stripes=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_one_owner_per_key_on_colliding_stripes(self, n_threads, n_stripes):
        """Threads race claims over a key range wider than the stripe
        count: per key at most one winner, and every key gets one."""
        table = RecoveryTable(n_stripes=n_stripes)
        n_keys = n_stripes * 2  # guarantees same-stripe key collisions

        def sweep(i):
            return [table.check_and_claim((i + j) % n_keys, 1) for j in range(n_keys)]

        results = race(n_threads, sweep)
        per_key = [0] * n_keys
        for i, wins in enumerate(results):
            for j, won in enumerate(wins):
                per_key[(i + j) % n_keys] += won
        assert per_key == [1] * n_keys
        assert table.claims == n_keys
        assert table.rejections == n_threads * n_keys - n_keys

    @given(n_threads=st.integers(N_THREADS, 12), life=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_successive_incarnations_still_single_file(self, n_threads, life):
        """The life-(L-1) precondition survives striping: after lives
        1..L-1 were claimed in order, a contended race on life L admits
        exactly one owner and a gapped life L+2 race admits none."""
        table = RecoveryTable()
        for prior in range(1, life):
            assert table.check_and_claim("k", prior)
        wins = race(n_threads, lambda i: table.check_and_claim("k", life))
        assert sum(wins) == 1
        skip_wins = race(n_threads, lambda i: table.check_and_claim("k", life + 2))
        assert sum(skip_wins) == 0
        assert table.recovering_life("k") == life
