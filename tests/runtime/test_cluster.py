"""Integration tests for the cluster runtime.

Same contract as the process-pool tests: FTScheduler + ClusterRuntime
must produce *bit-identical* results to FTScheduler + InlineRuntime --
with and without injected faults -- because only the pure compute phase
crosses the wire; every piece of scheduler state stays in the parent.
In-process :class:`WorkerServer` instances stand in for remote nodes
(``inproc://`` for speed, ``tcp://127.0.0.1`` for the real socket path);
the full multi-process story, including ``kill -9``, lives in
``python -m repro cluster --selftest``.
"""

import itertools
import time

import numpy as np
import pytest

from repro import comm
from repro.apps import make_app
from repro.comm.core import CommClosedError
from repro.core import FTScheduler
from repro.faults import FaultInjector, plan_faults
from repro.obs.events import EventKind, EventLog
from repro.runtime import ClusterRuntime, InlineRuntime, WorkerServer
from repro.runtime.cluster import BlockCache
from repro.runtime.tracing import ExecutionTrace

APPS = ("lcs", "cholesky")

_ids = itertools.count()


def app_keys(app):
    """All task keys, in a deterministic (reverse-BFS) order."""
    seen = []
    stack = [app.sink_key()]
    visited = set()
    while stack:
        k = stack.pop()
        if k in visited:
            continue
        visited.add(k)
        seen.append(k)
        stack.extend(app.predecessors(k))
    return seen


@pytest.fixture
def server():
    srv = WorkerServer(f"inproc://worker-{next(_ids)}").start()
    yield srv
    srv.close()


@pytest.fixture
def tcp_server():
    srv = WorkerServer("tcp://127.0.0.1:0").start()
    yield srv
    srv.close()


def assert_identical(got, want):
    if isinstance(want, np.ndarray):
        assert got.dtype == want.dtype and got.shape == want.shape
        assert (got == want).all()
    else:
        assert got == want


def run_ft(app, runtime, plan=None):
    store = app.make_store(True)
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan is not None else None
    FTScheduler(app, runtime, store=store, hooks=hooks, trace=trace).run()
    return app.extract(store), trace


@pytest.mark.parametrize("app_name", APPS)
class TestParity:
    def test_bit_identical_without_faults(self, app_name, server):
        app = make_app(app_name, scale="tiny")
        want, _ = run_ft(app, InlineRuntime())
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address])
        got, _ = run_ft(app, rt)
        assert_identical(got, want)

    def test_bit_identical_under_fault_plan(self, app_name, server):
        app = make_app(app_name, scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type="v=rand", count=2, seed=3)
        want, t0 = run_ft(app, InlineRuntime(), plan=plan)
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address])
        got, t1 = run_ft(app, rt, plan=plan)
        assert_identical(got, want)
        assert t0.total_recoveries > 0 and t1.total_recoveries > 0

    def test_bit_identical_over_tcp(self, app_name, tcp_server):
        app = make_app(app_name, scale="tiny")
        want, _ = run_ft(app, InlineRuntime())
        rt = ClusterRuntime(workers=2, seed=0, addresses=[tcp_server.address])
        got, _ = run_ft(app, rt)
        assert_identical(got, want)


class TestWorkerDeath:
    def test_severed_connection_recovers_and_verifies(self, server):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        log = EventLog()
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address],
                            die_on=[(1, 1)], event_log=log)
        sched = FTScheduler(app, rt, store=store, event_log=log)
        sched.run()
        app.verify(store)
        assert rt.worker_crashes == 1
        assert sched.trace.total_recoveries >= 1
        downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
        assert len(downs) == 1 and downs[0].key == (1, 1)
        # The comm substrate narrates the loss around the crash:
        # a DISCONNECT for the severed channel, a CONNECT for its
        # replacement (beyond the N dials of pool bring-up).
        disconnects = [e for e in log.events if e.kind is EventKind.DISCONNECT]
        assert any(e.data["reason"] not in ("shutdown",) for e in disconnects)
        connects = [e for e in log.events if e.kind is EventKind.CONNECT]
        assert len(connects) == 3  # 2 at bring-up + 1 replacement

    def test_repeated_deaths_survived(self, server):
        app = make_app("cholesky", scale="tiny")
        keys = app_keys(app)[:3]
        store = app.make_store(True)
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address],
                            die_on=keys[:3])
        FTScheduler(app, rt, store=store).run()
        app.verify(store)
        assert rt.worker_crashes == 3

    def test_heartbeat_silence_declared_dead(self):
        """A worker that owes a reply and stops heartbeating is declared
        dead without any transport-level EOF (the powered-off-node case)."""
        backing = WorkerServer("unused://never-started")
        stalled = [False]

        def handler(c):
            if not stalled[0]:
                stalled[0] = True
                while True:  # answer the dial validation, then go silent
                    try:
                        msg = c.recv()
                    except CommClosedError:
                        return
                    if msg[0] == "ping":
                        c.send(("pong",))
                        continue
                    time.sleep(3600)  # owes a reply; never beats
            else:
                backing._serve_connection(c)

        lis = comm.listen("tcp://127.0.0.1:0", handler)
        try:
            app = make_app("lcs", scale="tiny")
            store = app.make_store(True)
            log = EventLog()
            rt = ClusterRuntime(workers=1, seed=0, addresses=[lis.address],
                                event_log=log, heartbeat_timeout=0.5)
            sched = FTScheduler(app, rt, store=store, event_log=log)
            sched.run()
            app.verify(store)
            assert rt.worker_crashes == 1
            assert sched.trace.total_recoveries >= 1
            downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
            assert [e.data["reason"] for e in downs] == ["heartbeat"]
        finally:
            lis.close()


class TestLazyFetchAndCache:
    def test_fetches_match_cache_misses_and_cache_hits_save_traffic(self, server):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        log = EventLog()
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address],
                            event_log=log)
        FTScheduler(app, rt, store=store, event_log=log).run()
        app.verify(store)
        fetches = [e for e in log.events if e.kind is EventKind.FETCH]
        assert len(fetches) == server.cache.misses
        assert server.cache.hits > 0  # shared inputs reused without refetch
        assert all(e.data["nbytes"] > 0 for e in fetches)

    def test_run_token_scopes_cache_across_runs(self, server):
        # Two runs reusing the same (block, version) names must never
        # share cache entries: same server, two runtimes, so the second
        # run misses on (at least) its full distinct working set even
        # though run 1 populated identically-named entries.  (Exact miss
        # counts race: two channels can first-read the same key at once.)
        app = make_app("lcs", scale="tiny")
        run_ft(app, ClusterRuntime(workers=2, seed=0, addresses=[server.address]))
        first_misses = server.cache.misses
        working_set = len(server.cache)
        assert working_set > 0
        run_ft(app, ClusterRuntime(workers=2, seed=0, addresses=[server.address]))
        assert server.cache.misses >= first_misses + working_set
        assert len(server.cache) == 2 * working_set


class TestBlockCache:
    def test_hit_miss_accounting(self):
        c = BlockCache(capacity_bytes=1000)
        assert c.get(("t", "a", 0)) == (False, None)
        c.put(("t", "a", 0), "va", 100)
        assert c.get(("t", "a", 0)) == (True, "va")
        assert (c.hits, c.misses) == (1, 1)
        assert c.nbytes == 100 and len(c) == 1

    def test_lru_eviction_under_byte_bound(self):
        c = BlockCache(capacity_bytes=250)
        c.put(("t", "a", 0), "va", 100)
        c.put(("t", "b", 0), "vb", 100)
        c.get(("t", "a", 0))  # refresh a: b is now least-recent
        c.put(("t", "c", 0), "vc", 100)  # over budget -> evict b
        assert c.get(("t", "b", 0)) == (False, None)
        assert c.get(("t", "a", 0))[0] and c.get(("t", "c", 0))[0]
        assert c.nbytes <= 250

    def test_replacement_does_not_double_count(self):
        c = BlockCache(capacity_bytes=1000)
        c.put(("t", "a", 0), "v1", 400)
        c.put(("t", "a", 0), "v2", 300)
        assert c.nbytes == 300 and len(c) == 1

    def test_single_oversized_entry_is_kept(self):
        # The cache never evicts down to empty: a single entry larger
        # than the budget still serves the task that fetched it.
        c = BlockCache(capacity_bytes=10)
        c.put(("t", "a", 0), "big", 500)
        assert c.get(("t", "a", 0)) == (True, "big")


class TestRuntimeSurface:
    def test_addresses_required(self):
        with pytest.raises(ValueError):
            ClusterRuntime(workers=2)

    def test_run_result_contract(self, server):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True)
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address])
        res = FTScheduler(app, rt, store=store).run().run
        assert res.workers == 2
        assert res.frames == sum(res.worker_frames)
        assert res.makespan > 0

    def test_runtime_reusable_across_runs(self, server):
        rt = ClusterRuntime(workers=2, seed=0, addresses=[server.address])
        for _ in range(2):
            app = make_app("lcs", scale="tiny")
            store = app.make_store(True)
            FTScheduler(app, rt, store=store).run()
            app.verify(store)

    def test_one_server_shared_by_many_channels(self, server):
        # More parent threads than servers: all four channels multiplex
        # onto the single server's handler threads.
        app = make_app("cholesky", scale="tiny")
        want, _ = run_ft(app, InlineRuntime())
        rt = ClusterRuntime(workers=4, seed=0, addresses=[server.address])
        got, _ = run_ft(app, rt)
        assert_identical(got, want)
