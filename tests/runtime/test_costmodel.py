"""Unit tests for the virtual cost model."""

import pytest

from repro.runtime.costmodel import CostModel


class TestValidation:
    def test_defaults_valid(self):
        CostModel()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(steal_cost=-1.0)

    def test_zero_failed_steal_rejected(self):
        with pytest.raises(ValueError):
            CostModel(failed_steal_cost=0.0)

    def test_two_version_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            CostModel(two_version_compute_factor=0.9)


class TestComputeFactor:
    def test_single_assignment_no_penalty(self):
        assert CostModel().compute_factor(None) == 1.0

    def test_reuse_no_penalty(self):
        assert CostModel().compute_factor(1) == 1.0

    def test_two_version_penalty(self):
        cm = CostModel(two_version_compute_factor=1.25)
        assert cm.compute_factor(2) == 1.25
        assert cm.compute_factor(5) == 1.25


class TestScaled:
    def test_scales_overheads_not_compute_factor(self):
        cm = CostModel().scaled(3.0)
        base = CostModel()
        assert cm.frame_overhead == base.frame_overhead * 3
        assert cm.steal_cost == base.steal_cost * 3
        assert cm.two_version_compute_factor == base.two_version_compute_factor

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().frame_overhead = 5.0
