"""Unit tests for the work-stealing deque."""

import threading

from repro.runtime.deque import WorkDeque


class TestSemantics:
    def test_owner_lifo(self):
        d = WorkDeque()
        d.push_bottom(1)
        d.push_bottom(2)
        d.push_bottom(3)
        assert d.pop_bottom() == 3
        assert d.pop_bottom() == 2
        assert d.pop_bottom() == 1
        assert d.pop_bottom() is None

    def test_thief_fifo(self):
        d = WorkDeque()
        for i in range(3):
            d.push_bottom(i)
        assert d.steal_top() == 0
        assert d.steal_top() == 1
        assert d.steal_top() == 2
        assert d.steal_top() is None

    def test_mixed_ends(self):
        d = WorkDeque()
        for i in range(4):
            d.push_bottom(i)
        assert d.steal_top() == 0
        assert d.pop_bottom() == 3
        assert d.steal_top() == 1
        assert d.pop_bottom() == 2

    def test_len_and_bool(self):
        d = WorkDeque()
        assert not d
        assert len(d) == 0
        d.push_bottom("x")
        assert d
        assert len(d) == 1


class TestConcurrency:
    def test_no_item_lost_or_duplicated_under_contention(self):
        d = WorkDeque()
        total = 4000
        for i in range(total):
            d.push_bottom(i)
        taken: list[int] = []
        lock = threading.Lock()

        def worker(stealer: bool):
            while True:
                item = d.steal_top() if stealer else d.pop_bottom()
                if item is None:
                    return
                with lock:
                    taken.append(item)

        threads = [threading.Thread(target=worker, args=(i % 2 == 0,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(taken) == list(range(total))
