"""Tests for the pipelined/batched dispatch fast path (ROADMAP item 4).

Three layers:

* **frame codec** -- ``unpack_frames`` is the exact inverse of
  ``pack_frames`` and convicts truncated/corrupt batch buffers;
* **wire protocol** -- a raw worker process driven directly over its
  pipe: multiple jobs in one ``("jobs", ...)`` frame stream one reply
  each, a ``die``-flagged job kills the process mid-batch after the
  earlier jobs' replies have been sent, and descriptor pre-pinning
  serves repeat reads through a :class:`PinnedRef` without re-shipping
  the segment;
* **runtime integration** -- pipelined configurations (fewer processes
  than scheduler threads, inflight windows > 1) keep bit-identical
  parity with and without fault plans, a crash mid-pipeline re-executes
  only unfinished jobs through one WORKER_DOWN/WORKER_UP pair, and the
  new ``queued`` spans keep attribution tiling.
"""

import itertools
import pickle

import numpy as np
import pytest

from repro.apps import make_app
from repro.comm import frame
from repro.comm.core import CommClosedError
from repro.comm.frame import TruncatedFrameError, pack_frames, unpack_frames
from repro.core import FTScheduler
from repro.faults import FaultInjector, plan_faults
from repro.graph.taskspec import BlockRef
from repro.memory.shm import materialize_segment
from repro.obs.attribution import attribute_run
from repro.obs.events import EventKind, EventLog
from repro.runtime import ClusterRuntime, InlineRuntime, ProcessRuntime, WorkerServer
from repro.runtime.procpool import CRASH_EXIT_CODE, PinnedRef
from repro.runtime.tracing import ExecutionTrace

_ids = itertools.count()


# ---------------------------------------------------------------------------
# frame codec


class TestUnpackFrames:
    def test_inverse_of_pack_frames(self):
        payloads = [b"", b"x", b"hello" * 100, frame.dumps(("jobs", 1, None))]
        assert unpack_frames(pack_frames(payloads)) == payloads

    def test_empty_batch(self):
        assert unpack_frames(b"") == []

    def test_truncated_buffer_convicted(self):
        buf = pack_frames([b"abc", b"defgh"])
        with pytest.raises(TruncatedFrameError):
            unpack_frames(buf[:-2])

    def test_garbage_header_convicted(self):
        with pytest.raises(frame.OversizedFrameError):
            unpack_frames(b"\xff" * 16)


# ---------------------------------------------------------------------------
# wire protocol, against a raw worker process


class _NoInputSpec:
    """Picklable no-input spec: writes its key back (tracks execution)."""

    def inputs(self, key):
        return []

    def compute(self, key, ctx):
        ctx.write(BlockRef("out", 0), key)


class _SumSpec:
    """Picklable spec reading one block: writes the input's sum."""

    def inputs(self, key):
        return [BlockRef("in", 0)]

    def compute(self, key, ctx):
        value = ctx.read(BlockRef("in", 0))
        ctx.write(BlockRef("out", 0), float(np.asarray(value).sum()))


def _raw_worker():
    rt = ProcessRuntime(workers=1, seed=0)
    handle = rt._start_worker()
    return handle


def _job_frame(jobs):
    return ("jobs", pack_frames([frame.dumps(j) for j in jobs]))


def _written(reply):
    assert reply[0] == "done", reply
    blob = reply[2]
    # Workers reply out-of-band (frame.Encoded); the legacy bytes blob
    # shape is still asserted decodable for raw-protocol clients.
    if isinstance(blob, frame.Encoded):
        return dict(blob.load())
    return dict(pickle.loads(blob))


class TestJobsProtocol:
    def test_batch_streams_one_reply_per_job(self):
        h = _raw_worker()
        try:
            h.conn.send(("spec", pickle.dumps(_NoInputSpec())))
            h.conn.send(_job_frame([(j, f"k{j}", [], False) for j in (1, 2, 3)]))
            for jid in (1, 2, 3):  # FIFO within the channel
                reply = h.conn.recv()
                assert reply[1] == jid
                assert _written(reply)[("out", 0)] == f"k{jid}"
        finally:
            h.conn.send(("stop",))
            h.proc.join(timeout=5.0)

    def test_die_mid_batch_kills_after_earlier_replies(self):
        h = _raw_worker()
        try:
            h.conn.send(("spec", pickle.dumps(_NoInputSpec())))
            h.conn.send(_job_frame([
                (1, "a", [], False),
                (2, "b", [], True),   # injected death, mid-frame
                (3, "c", [], False),  # never executes
            ]))
            first = h.conn.recv()
            assert first[0] == "done" and first[1] == 1
            # The remaining jobs die with the process: the pipe reports
            # peer loss (EOF) instead of replies 2 and 3.
            with pytest.raises(CommClosedError):
                h.conn.recv()
        finally:
            h.proc.join(timeout=5.0)
            h.conn.close()
        assert h.proc.exitcode == CRASH_EXIT_CODE

    def test_pinned_ref_serves_repeat_reads_without_reattach(self):
        data = np.arange(64, dtype=np.float64)
        payload, seg = materialize_segment(data)
        assert seg is not None
        desc = seg.descriptor
        h = _raw_worker()
        try:
            h.conn.send(("spec", pickle.dumps(_SumSpec())))
            # First dispatch ships the full descriptor (worker attaches
            # and pins); every later one only names the pinned segment.
            h.conn.send(_job_frame([(1, "k1", [("in", 0, desc)], False)]))
            assert _written(h.conn.recv())[("out", 0)] == float(data.sum())
            h.conn.send(_job_frame([
                (2, "k2", [("in", 0, PinnedRef(desc.name))], False),
                (3, "k3", [("in", 0, PinnedRef(desc.name))], False),
            ]))
            assert _written(h.conn.recv())[("out", 0)] == float(data.sum())
            assert _written(h.conn.recv())[("out", 0)] == float(data.sum())
        finally:
            h.conn.send(("stop",))
            h.proc.join(timeout=5.0)
            seg.dispose()

    def test_unpinned_ref_is_a_scheduler_error(self):
        h = _raw_worker()
        try:
            h.conn.send(("spec", pickle.dumps(_SumSpec())))
            h.conn.send(_job_frame([
                (1, "k1", [("in", 0, PinnedRef("never-shipped"))], False)
            ]))
            reply = h.conn.recv()
            assert reply[0] == "fail" and reply[1] == 1
            assert "unpinned" in str(reply[2])
        finally:
            h.conn.send(("stop",))
            h.proc.join(timeout=5.0)


# ---------------------------------------------------------------------------
# runtime integration


def assert_identical(got, want):
    if isinstance(want, np.ndarray):
        assert got.dtype == want.dtype and got.shape == want.shape
        assert (got == want).all()
    else:
        assert got == want


def run_ft(app, runtime, shared=True, plan=None):
    store = app.make_store(True, shared=shared)
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan is not None else None
    FTScheduler(app, runtime, store=store, hooks=hooks, trace=trace).run()
    result = app.extract(store)
    if shared:
        store.close()
    return result, trace


@pytest.mark.parametrize("app_name", ("lcs", "cholesky"))
class TestPipelinedParity:
    def test_procpool_shared_process_deep_window(self, app_name):
        # 3 scheduler threads feeding 1 worker process, 3 jobs in
        # flight: maximal batching/interleaving pressure on one pipe.
        app = make_app(app_name, scale="tiny")
        want, _ = run_ft(app, InlineRuntime(), shared=False)
        rt = ProcessRuntime(workers=3, seed=0, procs=1, inflight=3)
        got, _ = run_ft(app, rt)
        assert_identical(got, want)

    def test_procpool_fault_plan_parity(self, app_name):
        app = make_app(app_name, scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type="v=rand", count=2, seed=3)
        want, t0 = run_ft(app, InlineRuntime(), shared=False, plan=plan)
        rt = ProcessRuntime(workers=3, seed=0, procs=1, inflight=3)
        got, t1 = run_ft(app, rt, plan=plan)
        assert_identical(got, want)
        assert t0.total_recoveries > 0 and t1.total_recoveries > 0

    def test_cluster_shared_channel_deep_window(self, app_name):
        server = WorkerServer(f"inproc://fastpath-{next(_ids)}").start()
        try:
            app = make_app(app_name, scale="tiny")
            want, _ = run_ft(app, InlineRuntime(), shared=False)
            rt = ClusterRuntime(workers=3, seed=0, addresses=[server.address],
                                channels=1, inflight=3)
            got, _ = run_ft(app, rt, shared=False)
            assert_identical(got, want)
        finally:
            server.close()


class TestCrashMidPipeline:
    def test_procpool_crash_reexecutes_only_unfinished(self):
        # One worker process with three jobs in flight: the die-flagged
        # job kills it while its channel-mates are queued behind it.
        # Every key the run computed before the down-event's seq was
        # already streamed back and must not re-execute.
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True, shared=True)
        log = EventLog()
        rt = ProcessRuntime(workers=3, seed=0, procs=1, inflight=3,
                            die_on=[(1, 1)], event_log=log)
        sched = FTScheduler(app, rt, store=store, event_log=log)
        sched.run()
        try:
            app.verify(store)
        finally:
            store.close()
        assert rt.worker_crashes == 1
        downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
        ups = [e for e in log.events if e.kind is EventKind.WORKER_UP]
        assert len(downs) == 1 and len(ups) == 1
        assert downs[0].key == (1, 1)
        assert downs[0].data["exitcode"] == CRASH_EXIT_CODE
        assert ups[0].seq > downs[0].seq
        # Only jobs that had not replied re-execute: every completed
        # incarnation (COMPUTE_END) before the crash stays completed --
        # no key both finished before the down and ran again after it.
        down_seq = downs[0].seq
        done_before = {e.key for e in log.events
                       if e.kind is EventKind.COMPUTE_END and e.seq < down_seq}
        began_after = {e.key for e in log.events
                       if e.kind is EventKind.COMPUTE_BEGIN and e.seq > down_seq}
        assert not (done_before & began_after)
        # The crashed jobs themselves recovered through the FT path.
        assert sched.trace.total_recoveries >= 1

    def test_cluster_crash_mid_pipeline_single_down(self):
        server = WorkerServer(f"inproc://fastpath-{next(_ids)}").start()
        try:
            app = make_app("lcs", scale="tiny")
            store = app.make_store(True)
            log = EventLog()
            rt = ClusterRuntime(workers=3, seed=0, addresses=[server.address],
                                channels=1, inflight=3, die_on=[(1, 1)],
                                event_log=log)
            sched = FTScheduler(app, rt, store=store, event_log=log)
            sched.run()
            app.verify(store)
            assert rt.worker_crashes == 1
            downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
            ups = [e for e in log.events if e.kind is EventKind.WORKER_UP]
            assert len(downs) == 1 and len(ups) == 1
            assert downs[0].key == (1, 1)
            assert ups[0].seq > downs[0].seq
            assert sched.trace.total_recoveries >= 1
        finally:
            server.close()


class TestQueuedAttribution:
    def test_queued_spans_tile_with_dispatch(self):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True, shared=True)
        log = EventLog()
        rt = ProcessRuntime(workers=2, seed=0, procs=1, inflight=2, event_log=log)
        sched = FTScheduler(app, rt, store=store, event_log=log)
        res = sched.run()
        store.close()
        report = attribute_run(log.events, res.run)
        # Queued time is bounded by its dispatch bracket per job, so in
        # aggregate kernel + queued never exceeds the dispatch walls ...
        disp = [e for e in log.events if e.kind is EventKind.SPAN
                and e.data.get("phase") == "dispatch"]
        queued = [e for e in log.events if e.kind is EventKind.SPAN
                  and e.data.get("phase") == "queued"]
        for q in queued:
            assert q.data["wall"] >= 0.0
        assert report.dispatch_count == len(disp)
        # ... and the overhead estimate subtracts it: never negative,
        # never above the raw round-trip mean.
        assert 0.0 <= report.dispatch_overhead_mean <= report.dispatch_mean
        assert report.categories.get("queued", 0.0) >= 0.0
        assert report.coverage >= 0.9
