"""Unit tests for the serial inline runtime."""

import pytest

from repro.runtime.frames import Frame
from repro.runtime.inline import InlineRuntime


class TestExecution:
    def test_runs_root(self):
        rt = InlineRuntime()
        ran = []
        rt.execute(Frame(lambda: ran.append("root")))
        assert ran == ["root"]

    def test_depth_first_lifo_order(self):
        rt = InlineRuntime()
        order = []

        def root():
            rt.spawn(lambda: order.append("a"))
            rt.spawn(lambda: order.append("b"))

        rt.execute(Frame(root))
        assert order == ["b", "a"]  # LIFO: last spawn runs first

    def test_nested_spawns_all_run(self):
        rt = InlineRuntime()
        count = [0]

        def task(depth):
            count[0] += 1
            if depth:
                rt.spawn(lambda: task(depth - 1))
                rt.spawn(lambda: task(depth - 1))

        res = rt.execute(Frame(lambda: task(5)))
        assert count[0] == 2 ** 6 - 1
        assert res.frames == 2 ** 6 - 1

    def test_deep_chain_no_recursion_limit(self):
        rt = InlineRuntime()
        n = [0]

        def step():
            n[0] += 1
            if n[0] < 50_000:
                rt.spawn(step)

        rt.execute(Frame(step))
        assert n[0] == 50_000


class TestAccounting:
    def test_charges_accumulate_into_makespan(self):
        rt = InlineRuntime()

        def root():
            rt.charge(10.0)
            rt.spawn(lambda: rt.charge(5.0), base_cost=2.0)

        res = rt.execute(Frame(root, base_cost=1.0))
        assert res.makespan == pytest.approx(18.0)
        assert res.busy_time == [pytest.approx(18.0)]
        assert res.utilization == pytest.approx(1.0)

    def test_workers_is_one(self):
        assert InlineRuntime().workers == 1


class TestGuards:
    def test_spawn_outside_execute_rejected(self):
        rt = InlineRuntime()
        with pytest.raises(RuntimeError):
            rt.spawn(lambda: None)

    def test_not_reentrant(self):
        rt = InlineRuntime()
        with pytest.raises(RuntimeError):
            rt.execute(Frame(lambda: rt.execute(Frame(lambda: None))))
