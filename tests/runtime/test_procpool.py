"""Integration tests for the multi-process runtime.

Parity is the contract: for every app, FTScheduler + ProcessRuntime must
produce *bit-identical* results to FTScheduler + InlineRuntime -- with
and without injected faults -- because the compute kernels are the same
pure functions, only executed in worker processes over shared-memory
views.  Speedup is asserted only on hosts with >= 4 cores; on smaller
hosts the same test asserts bounded per-task dispatch overhead instead,
so a single-core CI lane still exercises the full dispatch path.
"""

import os
import time

import numpy as np
import pytest

from repro.apps import AppConfig, make_app
from repro.core import FTScheduler, NabbitScheduler
from repro.detect.checksum import SharedMemoryChecksumStore
from repro.detect.silent import SilentFaultInjector, plan_silent_faults
from repro.exceptions import WorkerCrashError
from repro.faults import FaultInjector, plan_faults
from repro.obs.events import EventKind, EventLog
from repro.runtime import InlineRuntime, ProcessRuntime
from repro.runtime.tracing import ExecutionTrace

APPS = ("lcs", "cholesky")


def assert_identical(got, want):
    if isinstance(want, np.ndarray):
        assert got.dtype == want.dtype and got.shape == want.shape
        assert (got == want).all()
    else:
        assert got == want


def run_ft(app, runtime, shared, plan=None):
    store = app.make_store(True, shared=shared)
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan is not None else None
    FTScheduler(app, runtime, store=store, hooks=hooks, trace=trace).run()
    result = app.extract(store)
    if shared:
        store.close()
    return result, trace


@pytest.mark.parametrize("app_name", APPS)
class TestParity:
    def test_bit_identical_without_faults(self, app_name):
        app = make_app(app_name, scale="tiny")
        want, _ = run_ft(app, InlineRuntime(), shared=False)
        got, _ = run_ft(app, ProcessRuntime(workers=2, seed=0), shared=True)
        assert_identical(got, want)

    def test_bit_identical_under_fault_plan(self, app_name):
        app = make_app(app_name, scale="tiny")
        plan = plan_faults(app, phase="after_compute", task_type="v=rand", count=2, seed=3)
        want, t0 = run_ft(app, InlineRuntime(), shared=False, plan=plan)
        got, t1 = run_ft(app, ProcessRuntime(workers=2, seed=0), shared=True, plan=plan)
        assert_identical(got, want)
        assert t0.total_recoveries > 0 and t1.total_recoveries > 0

    def test_parity_with_non_shared_store(self, app_name):
        # Any store works with any runtime: a plain BlockStore simply
        # ships payloads to workers by pickle instead of descriptor.
        app = make_app(app_name, scale="tiny")
        want, _ = run_ft(app, InlineRuntime(), shared=False)
        got, _ = run_ft(app, ProcessRuntime(workers=2, seed=0), shared=False)
        assert_identical(got, want)


class TestWorkerDeath:
    def test_crash_recovers_and_result_verifies(self):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True, shared=True)
        log = EventLog()
        rt = ProcessRuntime(workers=2, seed=0, die_on=[(1, 1)], event_log=log)
        sched = FTScheduler(app, rt, store=store, event_log=log)
        sched.run()
        try:
            app.verify(store)
        finally:
            store.close()
        assert rt.worker_crashes == 1
        assert sched.trace.total_recoveries >= 1
        downs = [e for e in log.events if e.kind is EventKind.WORKER_DOWN]
        assert len(downs) == 1
        assert downs[0].key == (1, 1)
        assert downs[0].data["exitcode"] == 73

    def test_pool_survives_repeated_crashes(self):
        app = make_app("cholesky", scale="tiny")
        store = app.make_store(True, shared=True)
        keys = [k for k in app_keys(app)][:3]
        rt = ProcessRuntime(workers=2, seed=0, die_on=keys)
        FTScheduler(app, rt, store=store).run()
        try:
            app.verify(store)
        finally:
            store.close()
        assert rt.worker_crashes == len(keys)

    def test_nabbit_baseline_fails_on_crash(self):
        # The fault-oblivious baseline has no recovery path: a worker
        # death is terminal, exactly like a flagged fault (faithful to
        # the paper's comparison).
        app = make_app("lcs", scale="tiny")
        store = app.make_store(False, shared=True)
        rt = ProcessRuntime(workers=2, seed=0, die_on=[(1, 1)])
        with pytest.raises(WorkerCrashError):
            NabbitScheduler(app, rt, store=store).run()
        store.close()


def app_keys(app):
    """All task keys, in a deterministic (reverse-BFS) order."""
    seen = []
    stack = [app.sink_key()]
    visited = set()
    while stack:
        k = stack.pop()
        if k in visited:
            continue
        visited.add(k)
        seen.append(k)
        stack.extend(app.predecessors(k))
    return seen


class TestChecksumIntegration:
    def test_silent_fault_detected_and_recovered(self):
        app = make_app("cholesky", scale="tiny")
        store = SharedMemoryChecksumStore(app.ft_policy)
        app.seed_store(store)
        plan = plan_silent_faults(app, count=2, seed=13)
        trace = ExecutionTrace()
        injector = SilentFaultInjector(plan, app, store, trace=trace)
        rt = ProcessRuntime(workers=2, seed=0)
        FTScheduler(app, rt, store=store, hooks=injector, trace=trace).run()
        try:
            app.verify(store)
        finally:
            store.close()
        assert store.detection.mismatches >= 1
        assert trace.total_recoveries >= 1


class TestScaling:
    def test_speedup_or_bounded_overhead(self):
        cores = os.cpu_count() or 1
        if cores >= 4:
            self._assert_speedup()
        else:
            # Not a silent skip: on small hosts the dispatch path still
            # runs end to end and must stay cheap per task.
            self._assert_bounded_overhead()

    def _assert_speedup(self):
        # Kernel-dominated sizes so compute, not bookkeeping, is timed.
        for name, cfg in (
            ("lcs", AppConfig(n=4096, block=512)),
            ("cholesky", AppConfig(n=768, block=96)),
        ):
            times = {}
            for label, make_rt, shared in (
                ("inline", InlineRuntime, False),
                ("proc", lambda: ProcessRuntime(workers=4, seed=0), True),
            ):
                app = make_app(name, config=cfg)
                store = app.make_store(True, shared=shared)
                rt = make_rt()
                t0 = time.perf_counter()
                FTScheduler(app, rt, store=store).run()
                times[label] = time.perf_counter() - t0
                if shared:
                    store.close()
            assert times["inline"] / times["proc"] >= 1.8, (name, times)

    def _assert_bounded_overhead(self):
        app = make_app("lcs", scale="tiny")
        n_tasks = app.config.blocks ** 2
        store = app.make_store(True, shared=True)
        rt = ProcessRuntime(workers=2, seed=0)
        t0 = time.perf_counter()
        FTScheduler(app, rt, store=store).run()
        elapsed = time.perf_counter() - t0
        try:
            app.verify(store)
        finally:
            store.close()
        # Generous absolute bound: dispatch (ship descriptor, IPC round
        # trip, attach) must stay well under 50 ms per task even on a
        # loaded single-core host.
        assert elapsed / n_tasks < 0.05, f"{elapsed:.3f}s for {n_tasks} tasks"


class TestRuntimeSurface:
    def test_run_result_contract(self):
        app = make_app("lcs", scale="tiny")
        store = app.make_store(True, shared=True)
        rt = ProcessRuntime(workers=2, seed=0)
        res = FTScheduler(app, rt, store=store).run().run
        store.close()
        assert res.workers == 2
        assert res.frames == sum(res.worker_frames)
        assert res.steals == sum(res.worker_steals)
        assert res.makespan > 0

    def test_pool_reusable_across_runs(self):
        rt = ProcessRuntime(workers=2, seed=0)
        for _ in range(2):
            app = make_app("lcs", scale="tiny")
            store = app.make_store(True, shared=True)
            FTScheduler(app, rt, store=store).run()
            try:
                app.verify(store)
            finally:
                store.close()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ProcessRuntime(workers=0)
