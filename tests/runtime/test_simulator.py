"""Unit tests for the discrete-event work-stealing simulator."""

import pytest

from repro.runtime.costmodel import CostModel
from repro.runtime.frames import Frame
from repro.runtime.simulator import SimulatedRuntime

CM = CostModel(
    frame_overhead=1.0,
    spawn_cost=0.0,
    steal_cost=0.0,
    failed_steal_cost=1.0,
    lock_cost=0.0,
    atomic_cost=0.0,
)


def fan_out(rt, n, cost):
    """Root frame spawning n children of the given charge."""
    def root():
        for _ in range(n):
            rt.spawn(lambda: rt.charge(cost))
    return Frame(root)


class TestBasics:
    def test_single_frame(self):
        rt = SimulatedRuntime(workers=1, cost_model=CM)
        res = rt.execute(Frame(lambda: rt.charge(9.0)))
        assert res.makespan == pytest.approx(10.0)  # 9 + frame_overhead
        assert res.frames == 1

    def test_serial_sum(self):
        rt = SimulatedRuntime(workers=1, cost_model=CM)
        res = rt.execute(fan_out(rt, 10, 5.0))
        # root (1) + 10 children * (5 + 1)
        assert res.makespan == pytest.approx(1 + 10 * 6.0)
        assert res.frames == 11
        assert res.steals == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SimulatedRuntime(workers=0)

    def test_spawn_outside_execute_rejected(self):
        rt = SimulatedRuntime()
        with pytest.raises(RuntimeError):
            rt.spawn(lambda: None)

    def test_not_reentrant(self):
        rt = SimulatedRuntime()
        with pytest.raises(RuntimeError):
            rt.execute(Frame(lambda: rt.execute(Frame(lambda: None))))


class TestParallelism:
    def test_embarrassing_parallelism_speeds_up(self):
        times = {}
        for p in (1, 4, 16):
            rt = SimulatedRuntime(workers=p, cost_model=CM, seed=3)
            times[p] = rt.execute(fan_out(rt, 64, 100.0)).makespan
        assert times[4] < times[1] / 2.5
        assert times[16] < times[4] / 2.5

    def test_serial_chain_gains_nothing(self):
        def run(p):
            rt = SimulatedRuntime(workers=p, cost_model=CM, seed=1)
            n = [0]

            def step():
                rt.charge(50.0)
                n[0] += 1
                if n[0] < 40:
                    rt.spawn(step)

            return rt.execute(Frame(step)).makespan

        t1, t8 = run(1), run(8)
        # A dependence chain cannot go faster; stealing may add latency.
        assert t8 >= t1 * 0.999

    def test_speedup_bounded_by_p(self):
        for p in (2, 8):
            rt1 = SimulatedRuntime(workers=1, cost_model=CM)
            t1 = rt1.execute(fan_out(rt1, 40, 25.0)).makespan
            rtp = SimulatedRuntime(workers=p, cost_model=CM, seed=5)
            tp = rtp.execute(fan_out(rtp, 40, 25.0)).makespan
            assert t1 / tp <= p + 1e-9


class TestDeterminism:
    def test_same_seed_same_everything(self):
        def run(seed):
            rt = SimulatedRuntime(workers=6, cost_model=CM, seed=seed)
            res = rt.execute(fan_out(rt, 50, 10.0))
            return res.makespan, res.steals, res.failed_steals

        assert run(7) == run(7)

    def test_different_seed_different_schedule(self):
        def run(seed):
            rt = SimulatedRuntime(workers=6, cost_model=CM, seed=seed)
            return rt.execute(fan_out(rt, 50, 10.0)).steals

        assert any(run(s) != run(0) for s in range(1, 6))


class TestCausality:
    def test_child_never_starts_before_spawner_completes(self):
        rt = SimulatedRuntime(workers=8, cost_model=CM, seed=2, record_timeline=True)

        def root():
            rt.charge(500.0)  # long frame; children published at its end
            for i in range(6):
                rt.spawn(lambda: rt.charge(10.0), label="child")

        rt.execute(Frame(root, label="root"))
        tl = {label: (start, end) for start, end, _, label in rt.timeline}
        root_end = tl["root"][1]
        for start, end, _, label in rt.timeline:
            if label == "child":
                assert start >= root_end

    def test_timeline_no_overlap_per_worker(self):
        rt = SimulatedRuntime(workers=4, cost_model=CM, seed=9, record_timeline=True)

        def root():
            for _ in range(20):
                rt.spawn(lambda: rt.charge(7.0))

        rt.execute(Frame(root))
        per_worker: dict[int, list[tuple[float, float]]] = {}
        for start, end, w, _ in rt.timeline:
            per_worker.setdefault(w, []).append((start, end))
        for spans in per_worker.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    def test_makespan_is_last_completion(self):
        rt = SimulatedRuntime(workers=3, cost_model=CM, seed=0, record_timeline=True)

        def root():
            for _ in range(9):
                rt.spawn(lambda: rt.charge(11.0))

        res = rt.execute(Frame(root))
        assert res.makespan == pytest.approx(max(end for _, end, _, _ in rt.timeline))


class TestAccounting:
    def test_busy_time_sums_to_total_work(self):
        rt = SimulatedRuntime(workers=5, cost_model=CM, seed=4)
        res = rt.execute(fan_out(rt, 30, 12.0))
        assert sum(res.busy_time) == pytest.approx(1 + 30 * 13.0)

    def test_utilization_at_most_one(self):
        rt = SimulatedRuntime(workers=5, cost_model=CM, seed=4)
        res = rt.execute(fan_out(rt, 30, 12.0))
        assert 0.0 < res.utilization <= 1.0

    def test_steal_costs_charged(self):
        cm = CostModel(frame_overhead=1.0, spawn_cost=0.0, steal_cost=50.0,
                       failed_steal_cost=1.0, lock_cost=0.0, atomic_cost=0.0)
        rt = SimulatedRuntime(workers=4, cost_model=cm, seed=1)
        res = rt.execute(fan_out(rt, 12, 100.0))
        assert res.steals > 0
