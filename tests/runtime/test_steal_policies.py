"""Tests for the simulator's victim-selection policies."""

import pytest

from repro.core import run_scheduler
from repro.graph.builders import grid_graph
from repro.graph.taskspec import BlockRef
from repro.runtime import CostModel, SimulatedRuntime
from repro.runtime.frames import Frame

CM = CostModel(frame_overhead=1.0, spawn_cost=0.0, steal_cost=2.0,
               failed_steal_cost=1.0, lock_cost=0.0, atomic_cost=0.0)


def fan_out(rt, n, cost):
    def root():
        for _ in range(n):
            rt.spawn(lambda: rt.charge(cost))
    return Frame(root)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="steal policy"):
            SimulatedRuntime(workers=2, steal_policy="psychic")

    @pytest.mark.parametrize("policy", SimulatedRuntime.STEAL_POLICIES)
    def test_all_policies_complete_all_frames(self, policy):
        rt = SimulatedRuntime(workers=6, cost_model=CM, seed=2, steal_policy=policy)
        res = rt.execute(fan_out(rt, 40, 20.0))
        assert res.frames == 41

    @pytest.mark.parametrize("policy", SimulatedRuntime.STEAL_POLICIES)
    def test_scheduler_correct_under_every_policy(self, policy):
        spec = grid_graph(5, 5)
        ref = run_scheduler(spec).store.peek(BlockRef((4, 4), 0))
        res = run_scheduler(
            spec,
            runtime=SimulatedRuntime(workers=6, seed=3, steal_policy=policy),
        )
        assert res.store.peek(BlockRef((4, 4), 0)) == ref

    def test_round_robin_deterministic_without_seed_sensitivity(self):
        def run(seed):
            rt = SimulatedRuntime(workers=4, cost_model=CM, seed=seed,
                                  steal_policy="round_robin")
            return rt.execute(fan_out(rt, 30, 10.0)).makespan

        # The only randomness in round_robin runs is... none: same result
        # regardless of seed.
        assert run(1) == run(99)

    def test_richest_never_pays_failed_probes(self):
        rt = SimulatedRuntime(workers=6, cost_model=CM, seed=1, steal_policy="richest")
        res = rt.execute(fan_out(rt, 40, 20.0))
        assert res.failed_steals == 0

    def test_richest_at_least_as_fast_as_random_on_fanout(self):
        def run(policy):
            rt = SimulatedRuntime(workers=8, cost_model=CM, seed=5, steal_policy=policy)
            return rt.execute(fan_out(rt, 64, 50.0)).makespan

        assert run("richest") <= run("random") * 1.05
