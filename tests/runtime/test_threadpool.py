"""Unit tests for the real-thread work-stealing runtime."""

import threading

import pytest

from repro.runtime.frames import Frame
from repro.runtime.threadpool import ThreadedRuntime


class TestExecution:
    def test_all_frames_run(self):
        rt = ThreadedRuntime(workers=4, seed=1)
        count = [0]
        lock = threading.Lock()

        def root():
            for _ in range(200):
                def child():
                    with lock:
                        count[0] += 1
                rt.spawn(child)

        res = rt.execute(Frame(root))
        assert count[0] == 200
        assert res.frames == 201

    def test_nested_spawning(self):
        rt = ThreadedRuntime(workers=3, seed=2)
        seen = []
        lock = threading.Lock()

        def task(depth, tag):
            with lock:
                seen.append(tag)
            if depth:
                rt.spawn(lambda: task(depth - 1, tag + "L"))
                rt.spawn(lambda: task(depth - 1, tag + "R"))

        rt.execute(Frame(lambda: task(6, "x")))
        assert len(seen) == 2 ** 7 - 1
        assert len(set(seen)) == len(seen)

    def test_single_worker(self):
        rt = ThreadedRuntime(workers=1)
        ran = []
        rt.execute(Frame(lambda: ran.append(1)))
        assert ran == [1]

    def test_makespan_is_positive_wallclock(self):
        rt = ThreadedRuntime(workers=2, seed=0)
        res = rt.execute(Frame(lambda: None))
        assert res.makespan > 0
        assert res.workers == 2

    def test_work_actually_distributes(self):
        rt = ThreadedRuntime(workers=4, seed=3)
        tids = set()
        lock = threading.Lock()

        def root():
            for _ in range(300):
                def child():
                    import time
                    time.sleep(0.0002)
                    with lock:
                        tids.add(threading.get_ident())
                rt.spawn(child)

        rt.execute(Frame(root))
        assert len(tids) >= 2  # at least one steal occurred


class TestRunResultCounters:
    """The runtime's internal counters must surface in RunResult,
    per worker, and be mutually consistent."""

    def _spawn_tree(self, rt, depth=7):
        def task(d):
            if d:
                rt.spawn(lambda: task(d - 1))
                rt.spawn(lambda: task(d - 1))

        return Frame(lambda: task(depth))

    def test_per_worker_frames_and_steals_exposed(self):
        rt = ThreadedRuntime(workers=4, seed=11)
        res = rt.execute(self._spawn_tree(rt))
        assert len(res.worker_frames) == 4
        assert len(res.worker_steals) == 4
        assert sum(res.worker_frames) == res.frames == 2 ** 8 - 1
        assert sum(res.worker_steals) == res.steals

    def test_per_worker_busy_time_recorded(self):
        rt = ThreadedRuntime(workers=2, seed=12)

        def root():
            for _ in range(20):
                def child():
                    import time
                    time.sleep(0.0005)
                rt.spawn(child)

        res = rt.execute(Frame(root))
        assert len(res.busy_time) == 2
        assert sum(res.busy_time) > 0
        # Busy time is spent inside the makespan window.
        assert all(b <= res.makespan + 1e-6 for b in res.busy_time)

    def test_parks_counted(self):
        # One long-running frame keeps the pool non-quiescent while the
        # other workers find nothing to do, so they must park.
        import time

        rt = ThreadedRuntime(workers=4, seed=13)
        res = rt.execute(Frame(lambda: time.sleep(0.02)))
        assert res.parks >= 1

    def test_single_worker_never_steals(self):
        rt = ThreadedRuntime(workers=1, seed=14)
        res = rt.execute(self._spawn_tree(rt, depth=4))
        assert res.steals == 0
        assert res.worker_steals == [0]
        assert res.worker_frames == [res.frames]

    def test_counters_consistent_under_contention(self):
        # Blocking frames force steals and idle episodes at once; the
        # per-worker vectors must still sum to the totals exactly.
        import time

        rt = ThreadedRuntime(workers=4, seed=15)

        def root():
            for i in range(60):
                rt.spawn(lambda i=i: time.sleep(0.0005 if i % 3 else 0.002))

        res = rt.execute(Frame(root))
        assert sum(res.worker_frames) == res.frames == 61
        assert sum(res.worker_steals) == res.steals
        assert res.steals >= 1


class TestParkSymmetry:
    """One idle episode = exactly one PARK, and one UNPARK if work ever
    reappeared for that worker -- regardless of how many capped
    exponential sleeps the episode took (regression: the backoff loop
    must not re-emit PARK per sleep)."""

    @staticmethod
    def _per_worker_kinds(log):
        from repro.obs.events import EventKind

        per = {}
        for e in log.events:
            if e.kind in (EventKind.PARK, EventKind.UNPARK):
                per.setdefault(e.worker, []).append(e.kind)
        return per

    def test_park_unpark_alternate_per_worker(self):
        import time

        from repro.obs.events import EventKind, EventLog

        log = EventLog()
        rt = ThreadedRuntime(workers=4, seed=16, event_log=log)

        def root():
            # Staggered bursts: workers drain, park, then get new work.
            for _ in range(4):
                time.sleep(0.005)
                for _ in range(8):
                    rt.spawn(lambda: time.sleep(0.0005))

        res = rt.execute(Frame(root))
        per = self._per_worker_kinds(log)
        assert per, "contended run produced no park events"
        for worker, kinds in per.items():
            for i, kind in enumerate(kinds):
                want = EventKind.PARK if i % 2 == 0 else EventKind.UNPARK
                assert kind is want, f"worker {worker}: {kinds}"
            parks = sum(1 for k in kinds if k is EventKind.PARK)
            unparks = len(kinds) - parks
            # A worker may end the run parked (quiescence), never the
            # other way around.
            assert parks - unparks in (0, 1), f"worker {worker}: {kinds}"
        total_parks = sum(
            1 for e in log.events if e.kind is EventKind.PARK
        )
        assert total_parks == res.parks


class TestFailure:
    def test_frame_exception_propagates(self):
        rt = ThreadedRuntime(workers=3, seed=4)

        def root():
            rt.spawn(lambda: (_ for _ in ()).throw(ValueError("boom")))

        with pytest.raises(ValueError, match="boom"):
            rt.execute(Frame(root))

    def test_pool_reusable_after_failure(self):
        rt = ThreadedRuntime(workers=2, seed=5)
        with pytest.raises(ValueError):
            rt.execute(Frame(lambda: (_ for _ in ()).throw(ValueError("x"))))
        ran = []
        rt.execute(Frame(lambda: ran.append(1)))
        assert ran == [1]


class TestGuards:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(workers=0)

    def test_spawn_from_outside_worker_rejected(self):
        rt = ThreadedRuntime(workers=2)
        with pytest.raises(RuntimeError):
            rt.spawn(lambda: None)

    def test_charge_is_noop(self):
        ThreadedRuntime(workers=1).charge(5.0)  # must not raise
