"""Unit tests for the real-thread work-stealing runtime."""

import threading

import pytest

from repro.runtime.frames import Frame
from repro.runtime.threadpool import ThreadedRuntime


class TestExecution:
    def test_all_frames_run(self):
        rt = ThreadedRuntime(workers=4, seed=1)
        count = [0]
        lock = threading.Lock()

        def root():
            for _ in range(200):
                def child():
                    with lock:
                        count[0] += 1
                rt.spawn(child)

        res = rt.execute(Frame(root))
        assert count[0] == 200
        assert res.frames == 201

    def test_nested_spawning(self):
        rt = ThreadedRuntime(workers=3, seed=2)
        seen = []
        lock = threading.Lock()

        def task(depth, tag):
            with lock:
                seen.append(tag)
            if depth:
                rt.spawn(lambda: task(depth - 1, tag + "L"))
                rt.spawn(lambda: task(depth - 1, tag + "R"))

        rt.execute(Frame(lambda: task(6, "x")))
        assert len(seen) == 2 ** 7 - 1
        assert len(set(seen)) == len(seen)

    def test_single_worker(self):
        rt = ThreadedRuntime(workers=1)
        ran = []
        rt.execute(Frame(lambda: ran.append(1)))
        assert ran == [1]

    def test_makespan_is_positive_wallclock(self):
        rt = ThreadedRuntime(workers=2, seed=0)
        res = rt.execute(Frame(lambda: None))
        assert res.makespan > 0
        assert res.workers == 2

    def test_work_actually_distributes(self):
        rt = ThreadedRuntime(workers=4, seed=3)
        tids = set()
        lock = threading.Lock()

        def root():
            for _ in range(300):
                def child():
                    import time
                    time.sleep(0.0002)
                    with lock:
                        tids.add(threading.get_ident())
                rt.spawn(child)

        rt.execute(Frame(root))
        assert len(tids) >= 2  # at least one steal occurred


class TestFailure:
    def test_frame_exception_propagates(self):
        rt = ThreadedRuntime(workers=3, seed=4)

        def root():
            rt.spawn(lambda: (_ for _ in ()).throw(ValueError("boom")))

        with pytest.raises(ValueError, match="boom"):
            rt.execute(Frame(root))

    def test_pool_reusable_after_failure(self):
        rt = ThreadedRuntime(workers=2, seed=5)
        with pytest.raises(ValueError):
            rt.execute(Frame(lambda: (_ for _ in ()).throw(ValueError("x"))))
        ran = []
        rt.execute(Frame(lambda: ran.append(1)))
        assert ran == [1]


class TestGuards:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(workers=0)

    def test_spawn_from_outside_worker_rejected(self):
        rt = ThreadedRuntime(workers=2)
        with pytest.raises(RuntimeError):
            rt.spawn(lambda: None)

    def test_charge_is_noop(self):
        ThreadedRuntime(workers=1).charge(5.0)  # must not raise
