"""Unit tests for execution tracing (the N accounting)."""

from repro.runtime.tracing import ExecutionTrace


class TestCounters:
    def test_compute_counts(self):
        t = ExecutionTrace()
        t.count_compute("a")
        t.count_compute("a")
        t.count_compute("b")
        assert t.executions() == {"a": 2, "b": 1}
        assert t.tasks_computed == 2
        assert t.total_computes == 3
        assert t.reexecutions == 1
        assert t.max_executions == 2

    def test_empty_trace(self):
        t = ExecutionTrace()
        assert t.reexecutions == 0
        assert t.max_executions == 0
        assert t.tasks_computed == 0

    def test_recoveries(self):
        t = ExecutionTrace()
        t.count_recovery("x")
        t.count_recovery("x")
        t.count_recovery("y")
        assert t.total_recoveries == 3

    def test_bump(self):
        t = ExecutionTrace()
        t.bump("resets")
        t.bump("resets", 4)
        assert t.resets == 5

    def test_bump_rejects_unknown_counter(self):
        import pytest

        t = ExecutionTrace()
        with pytest.raises(ValueError, match="unknown ExecutionTrace counter"):
            t.bump("reste")  # the typo that used to silently create an attribute
        assert not hasattr(t, "reste")

    def test_typed_increments_cover_every_scalar_counter(self):
        t = ExecutionTrace()
        t.count_recovery_skip()
        t.count_reset()
        t.count_notify_reinit()
        t.count_reinit_scan(3)
        t.count_notification()
        t.count_stale_notification()
        t.count_stale_frame()
        t.count_fault_observed()
        t.count_fault_injected()
        assert t.recovery_skips == 1
        assert t.resets == 1
        assert t.notify_reinits == 1
        assert t.reinit_scans == 3
        assert t.notifications == 1
        assert t.stale_notifications == 1
        assert t.stale_frames == 1
        assert t.faults_observed == 1
        assert t.faults_injected == 1

    def test_summary_keys(self):
        t = ExecutionTrace()
        t.count_compute("a")
        t.count_compute_failure("a")
        s = t.summary()
        assert s["tasks_computed"] == 1
        assert s["reexecutions"] == 0
        for key in ("recoveries", "resets", "notify_reinits", "faults_observed"):
            assert key in s

    def test_summary_reports_every_scalar_counter(self):
        # Regression: reinit_scans and stale_frames used to be silently
        # dropped from summary(), so harness reports lost them.
        t = ExecutionTrace()
        t.count_reinit_scan(7)
        t.count_stale_frame()
        s = t.summary()
        assert s["reinit_scans"] == 7
        assert s["stale_frames"] == 1
        for name in ExecutionTrace.SCALAR_COUNTERS:
            assert name in s, f"summary() omits {name}"

    def test_thread_safety_smoke(self):
        import threading

        t = ExecutionTrace()

        def work():
            for i in range(500):
                t.count_compute(i % 7)
                t.bump("notifications")

        threads = [threading.Thread(target=work) for _ in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.total_computes == 3000
        assert t.notifications == 3000
