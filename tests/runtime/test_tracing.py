"""Unit tests for execution tracing (the N accounting)."""

from repro.runtime.tracing import ExecutionTrace


class TestCounters:
    def test_compute_counts(self):
        t = ExecutionTrace()
        t.count_compute("a")
        t.count_compute("a")
        t.count_compute("b")
        assert t.executions() == {"a": 2, "b": 1}
        assert t.tasks_computed == 2
        assert t.total_computes == 3
        assert t.reexecutions == 1
        assert t.max_executions == 2

    def test_empty_trace(self):
        t = ExecutionTrace()
        assert t.reexecutions == 0
        assert t.max_executions == 0
        assert t.tasks_computed == 0

    def test_recoveries(self):
        t = ExecutionTrace()
        t.count_recovery("x")
        t.count_recovery("x")
        t.count_recovery("y")
        assert t.total_recoveries == 3

    def test_bump(self):
        t = ExecutionTrace()
        t.bump("resets")
        t.bump("resets", 4)
        assert t.resets == 5

    def test_summary_keys(self):
        t = ExecutionTrace()
        t.count_compute("a")
        t.count_compute_failure("a")
        s = t.summary()
        assert s["tasks_computed"] == 1
        assert s["reexecutions"] == 0
        for key in ("recoveries", "resets", "notify_reinits", "faults_observed"):
            assert key in s

    def test_thread_safety_smoke(self):
        import threading

        t = ExecutionTrace()

        def work():
            for i in range(500):
                t.count_compute(i % 7)
                t.bump("notifications")

        threads = [threading.Thread(target=work) for _ in range(6)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert t.total_computes == 3000
        assert t.notifications == 3000
