"""The runtime half of the zero-copy data plane: the parent's
send-side :class:`EncodedBlockCache` (encode once, gather W times, with
versioned-key + identity coherence), :func:`own_payload` (the single
allowed copy, spent only on worker cache insert), and end-to-end parity
on a cluster graph whose blocks are multiple MiB each."""

import itertools

import numpy as np
import pytest

from repro.apps import make_app
from repro.apps.base import AppConfig
from repro.comm import frame
from repro.core import FTScheduler
from repro.faults import FaultInjector, plan_faults
from repro.memory.shm import own_payload
from repro.runtime import ClusterRuntime, InlineRuntime, WorkerServer
from repro.runtime.cluster import EncodedBlockCache
from repro.runtime.tracing import ExecutionTrace

_ids = itertools.count()


@pytest.fixture
def server():
    srv = WorkerServer(f"inproc://zc-{next(_ids)}").start()
    yield srv
    srv.close()


@pytest.fixture
def tcp_server():
    srv = WorkerServer("tcp://127.0.0.1:0").start()
    yield srv
    srv.close()


def run_ft(app, runtime, plan=None):
    store = app.make_store(True)
    trace = ExecutionTrace()
    hooks = FaultInjector(plan, app, store, trace) if plan is not None else None
    FTScheduler(app, runtime, store=store, hooks=hooks, trace=trace).run()
    return app.extract(store), trace


class TestEncodedBlockCache:
    def test_hit_requires_same_key_and_same_object(self):
        c = EncodedBlockCache(capacity_bytes=1 << 20)
        v = np.arange(8.0)
        enc = frame.encode_oob(v)
        assert c.get("b", 0, v) is None
        c.put("b", 0, v, enc)
        assert c.get("b", 0, v) is enc
        # A new version misses even with the same object...
        assert c.get("b", 1, v) is None
        # ...and a payload swap (rewrite / mutator corruption replaces
        # the stored object) misses even with the same version.
        assert c.get("b", 0, v.copy()) is None
        assert c.hits == 1 and c.misses == 3

    def test_replacement_does_not_double_count(self):
        c = EncodedBlockCache(capacity_bytes=1 << 20)
        v = np.arange(1024.0)
        c.put("b", 0, v, frame.encode_oob(v))
        n = c.nbytes
        c.put("b", 0, v, frame.encode_oob(v))
        assert c.nbytes == n and len(c) == 1

    def test_lru_eviction_under_byte_bound(self):
        v = np.arange(1024.0)  # 8 KiB
        enc = frame.encode_oob(v)
        c = EncodedBlockCache(capacity_bytes=int(enc.nbytes * 2.5))
        c.put("a", 0, v, enc)
        c.put("b", 0, v, enc)
        assert c.get("a", 0, v) is enc  # refresh a: b is now least-recent
        c.put("c", 0, v, enc)
        assert c.get("b", 0, v) is None
        assert c.get("a", 0, v) is enc and c.get("c", 0, v) is enc
        assert c.nbytes <= c.capacity_bytes

    def test_single_oversized_entry_is_kept(self):
        v = np.arange(1024.0)
        enc = frame.encode_oob(v)
        c = EncodedBlockCache(capacity_bytes=16)
        c.put("a", 0, v, enc)
        assert c.get("a", 0, v) is enc

    def test_zero_capacity_disables_reuse(self):
        v = np.arange(1024.0)
        c = EncodedBlockCache(capacity_bytes=0)
        c.put("a", 0, v, frame.encode_oob(v))
        c.put("b", 0, v, frame.encode_oob(v))
        assert len(c) == 1  # only the single-entry floor survives


class TestOwnPayload:
    def test_arrayless_payload_passes_through(self):
        v = {"k": (1, "x")}
        owned, nbytes = own_payload(v)
        assert owned is v and nbytes == 0

    def test_owning_array_passes_through(self):
        v = np.arange(64.0)
        owned, nbytes = own_payload(v)
        assert owned is v and nbytes == v.nbytes

    def test_view_backed_array_is_copied_out(self):
        base = bytearray(np.arange(64.0).tobytes())
        view = np.frombuffer(base, dtype=np.float64)
        assert not view.flags.owndata
        owned, nbytes = own_payload(("data", view))
        got = owned[1]
        assert got.flags.owndata and nbytes == view.nbytes
        np.testing.assert_array_equal(got, view)
        assert not np.shares_memory(got, view)

    def test_nested_structure_rebuilt(self):
        base = np.arange(32.0)
        v = {"a": [base[:16], base], "b": "meta"}
        owned, _ = own_payload(v)
        assert owned["b"] == "meta"
        np.testing.assert_array_equal(owned["a"][0], base[:16])
        assert all(a.flags.owndata for a in owned["a"])


class TestClusterZeroCopy:
    # B=2 blocks of 512x512 float64 = 2 MiB each: every fetch and every
    # reply rides the multi-segment OOB frame kind.
    CFG = AppConfig(n=1024, block=512)

    def test_multi_mib_blocks_bit_identical(self, server):
        app = make_app("cholesky", config=self.CFG)
        want, _ = run_ft(app, InlineRuntime())
        got, _ = run_ft(
            app, ClusterRuntime(workers=2, seed=0, addresses=[server.address])
        )
        assert got.dtype == want.dtype and (got == want).all()

    def test_multi_mib_blocks_bit_identical_over_tcp_under_faults(self, tcp_server):
        app = make_app("cholesky", config=self.CFG)
        plan = plan_faults(app, phase="after_compute", task_type="v=rand",
                           count=1, seed=3)
        want, t0 = run_ft(app, InlineRuntime(), plan=plan)
        got, t1 = run_ft(
            app,
            ClusterRuntime(workers=2, seed=0, addresses=[tcp_server.address]),
            plan=plan,
        )
        assert got.dtype == want.dtype and (got == want).all()
        assert t0.total_recoveries > 0 and t1.total_recoveries > 0

    def test_send_side_cache_encodes_once_per_version(self):
        # Two *separate* servers, so their block caches cannot shadow the
        # parent: a block both workers read is requested twice, and the
        # second ship must reuse the cached encoding instead of
        # re-pickling.
        servers = [WorkerServer(f"inproc://zc-{next(_ids)}").start() for _ in range(2)]
        try:
            app = make_app("lcs", scale="tiny")
            rt = ClusterRuntime(
                workers=2, seed=0, addresses=[s.address for s in servers]
            )
            run_ft(app, rt)
            assert rt._enc_cache.hits > 0
            assert rt._enc_cache.nbytes <= rt._enc_cache.capacity_bytes
        finally:
            for s in servers:
                s.close()

    def test_worker_cache_owns_its_bytes(self, server):
        # The use-after-recycle guarantee at the runtime layer: values in
        # the worker BlockCache must not alias a transport buffer, so
        # recycling it can never corrupt a cached block.
        app = make_app("cholesky", config=self.CFG)
        run_ft(app, ClusterRuntime(workers=2, seed=0, addresses=[server.address]))
        assert len(server.cache) > 0
        for value, _ in server.cache._entries.values():
            if isinstance(value, np.ndarray):
                assert value.flags.owndata
