"""Smoke tests: every example script runs to completion as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "same result as the fault-free run" in out

    def test_fault_injection_study(self):
        out = run_example("fault_injection_study.py", "--n", "48", "--block", "16",
                          "--victims", "2")
        assert "verified" in out
        assert "after_notify" in out

    def test_custom_task_graph(self):
        out = run_example("custom_task_graph.py")
        assert "result unchanged" in out

    def test_soft_error_rates(self):
        out = run_example("soft_error_rates.py")
        assert "Online soft-error rate sweep" in out
        assert "Worker occupancy" in out

    def test_silent_fault_study(self):
        out = run_example("silent_fault_study.py", "--reps", "1")
        assert "Coverage by detection policy and fault count" in out
        assert "Fault-free checksum overhead" in out

    def test_verify_study(self):
        out = run_example("verify_study.py", "--apps", "lcs", "--seeds", "2",
                          "--branch-budget", "4")
        assert "All benchmarks clean: True" in out
        assert "Seeded bugs detected: 2/2" in out

    @pytest.mark.slow
    def test_scalability_study(self):
        out = run_example("scalability_study.py", "--app", "fw", "--reps", "1",
                          timeout=600)
        assert "Figure 7 view" in out
        assert "Work-stealing internals" in out
