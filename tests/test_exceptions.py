"""Tests for the exception hierarchy (identity payloads drive recovery
routing, so they are load-bearing)."""

import pytest

from repro.exceptions import (
    DataCorruptionError,
    FaultError,
    OverwrittenError,
    ReproError,
    SchedulerError,
    TaskCorruptionError,
)


class TestHierarchy:
    def test_fault_errors_are_faults_not_scheduler_bugs(self):
        for exc in (
            TaskCorruptionError("k", 1),
            DataCorruptionError("b", 0),
            OverwrittenError("b", 1, 3),
        ):
            assert isinstance(exc, FaultError)
            assert isinstance(exc, ReproError)
            assert not isinstance(exc, SchedulerError)

    def test_scheduler_error_not_a_fault(self):
        assert not isinstance(SchedulerError("bug"), FaultError)


class TestPayloads:
    def test_task_corruption_identity(self):
        e = TaskCorruptionError(("gemm", 1, 2, 3), 4)
        assert e.key == ("gemm", 1, 2, 3)
        assert e.life == 4
        assert "life=4" in str(e)

    def test_data_corruption_identity(self):
        e = DataCorruptionError(("a", 1, 2), 3, producer=("gemm", 2, 1, 2))
        assert e.block == ("a", 1, 2)
        assert e.version == 3
        assert e.producer == ("gemm", 2, 1, 2)

    def test_overwritten_identity_and_message(self):
        e = OverwrittenError("blk", 2, 5)
        assert e.resident == 5
        assert "wanted v2" in str(e)
        assert "v5" in str(e)

    def test_overwritten_never_written(self):
        e = OverwrittenError("blk", 0, None)
        assert "nothing" in str(e)
