"""Tests for the exception hierarchy (identity payloads drive recovery
routing, so they are load-bearing)."""

import pytest

from repro.exceptions import (
    DataCorruptionError,
    FaultError,
    OverwrittenError,
    ReproError,
    SchedulerError,
    TaskCorruptionError,
    WorkerCrashError,
)


class TestHierarchy:
    def test_fault_errors_are_faults_not_scheduler_bugs(self):
        for exc in (
            TaskCorruptionError("k", 1),
            DataCorruptionError("b", 0),
            OverwrittenError("b", 1, 3),
        ):
            assert isinstance(exc, FaultError)
            assert isinstance(exc, ReproError)
            assert not isinstance(exc, SchedulerError)

    def test_scheduler_error_not_a_fault(self):
        assert not isinstance(SchedulerError("bug"), FaultError)


class TestPayloads:
    def test_task_corruption_identity(self):
        e = TaskCorruptionError(("gemm", 1, 2, 3), 4)
        assert e.key == ("gemm", 1, 2, 3)
        assert e.life == 4
        assert "life=4" in str(e)

    def test_data_corruption_identity(self):
        e = DataCorruptionError(("a", 1, 2), 3, producer=("gemm", 2, 1, 2))
        assert e.block == ("a", 1, 2)
        assert e.version == 3
        assert e.producer == ("gemm", 2, 1, 2)

    def test_overwritten_identity_and_message(self):
        e = OverwrittenError("blk", 2, 5)
        assert e.resident == 5
        assert "wanted v2" in str(e)
        assert "v5" in str(e)

    def test_overwritten_never_written(self):
        e = OverwrittenError("blk", 0, None)
        assert "nothing" in str(e)


class TestWorkerCrash:
    def test_identity_and_message(self):
        e = WorkerCrashError(("gemm", 1, 2), pid=123, exitcode=73)
        assert e.key == ("gemm", 1, 2)
        assert e.pid == 123 and e.exitcode == 73
        assert "pid=123" in str(e) and "exitcode=73" in str(e)
        assert isinstance(e, FaultError)


class TestPickleRoundTrip:
    """Fault errors cross process boundaries (worker -> parent pipe);
    their multi-argument constructors need explicit __reduce__ support."""

    @pytest.mark.parametrize(
        "exc",
        [
            TaskCorruptionError(("gemm", 1, 2, 3), 4),
            DataCorruptionError(("a", 1), 3, producer=("gemm", 2)),
            OverwrittenError("blk", 2, 5, producer=("t", 0)),
            OverwrittenError("blk", 0, None),
            WorkerCrashError((1, 1), pid=99, exitcode=73),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_round_trip_preserves_identity(self, exc):
        import pickle

        back = pickle.loads(pickle.dumps(exc))
        assert type(back) is type(exc)
        assert str(back) == str(exc)
        assert back.__dict__ == exc.__dict__
