"""Tests for the top-level ``python -m repro`` CLI."""

from repro.__main__ import main


class TestTopLevelCLI:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        for name in ("lcs", "sw", "fw", "lu", "cholesky"):
            assert name in out

    def test_about(self, capsys):
        assert main(["about"]) == 0
        assert "SC 2014" in capsys.readouterr().out

    def test_help(self, capsys):
        assert main([]) == 0
        assert "selftest" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["fnord"]) == 2

    def test_harness_forwarding(self, capsys):
        assert main(["harness", "--quick", "--only", "table1", "--apps", "lcs"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate", "lcs"]) == 0
        out = capsys.readouterr().out
        assert "valid task graph" in out
        assert "reachable tasks" in out

    def test_validate_explicit_size(self, capsys):
        assert main(["validate", "fw", "--n", "12", "--block", "4"]) == 0
        assert "valid task graph" in capsys.readouterr().out

    def test_validate_max_tasks_budget(self, capsys):
        assert main(["validate", "cholesky", "--max-tasks", "1"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_verify_lint(self, capsys):
        assert main(["verify", "lint"]) == 0
        assert "verify lint: clean" in capsys.readouterr().out

    def test_verify_invariants(self, capsys):
        assert main(["verify", "invariants", "--app", "lcs"]) == 0
        assert "clean over" in capsys.readouterr().out
