"""Bounded schedule exploration: determinism, coverage, and the seeded-bug
mutation study that proves the checker can convict a broken scheduler."""

import pytest

from repro.obs.events import EventKind
from repro.verify.explore import (
    MUTATIONS,
    Schedule,
    explore,
    make_app_case,
    mutation_study,
    run_schedule,
)

CASE = make_app_case("lcs", fault_phase="before_compute")


class TestRunSchedule:
    def test_replay_is_deterministic(self):
        app, plan = CASE(0)
        sched = Schedule(seed=5, workers=3)
        first = run_schedule(app, sched, plan=plan)
        app2, plan2 = CASE(0)
        second = run_schedule(app2, sched, plan=plan2)
        assert first.trail == second.trail
        assert first.events == second.events
        assert first.kinds == second.kinds

    def test_trail_entries_are_valid_choices(self):
        app, plan = CASE(1)
        outcome = run_schedule(app, Schedule(seed=1, workers=3), plan=plan)
        assert outcome.error is None
        for n, choice in outcome.trail:
            assert 0 <= choice < n

    def test_forced_decisions_are_replayed(self):
        app, plan = CASE(2)
        base = run_schedule(app, Schedule(seed=2, workers=3), plan=plan)
        forced = tuple(choice for _, choice in base.trail[:4])
        app2, plan2 = CASE(2)
        again = run_schedule(app2, Schedule(seed=2, workers=3, decisions=forced), plan=plan2)
        assert tuple(c for _, c in again.trail[: len(forced)]) == forced

    def test_single_worker_schedules_run(self):
        app, plan = CASE(0)
        outcome = run_schedule(app, Schedule(seed=0, workers=1), plan=plan)
        assert outcome.error is None
        assert outcome.clean


class TestExplore:
    def test_real_scheduler_survives_exploration(self):
        report = explore(CASE, seeds=range(3), perturbations=1, branch_budget=6)
        assert report.clean, [str(o.schedule) for o in report.counterexamples()]
        # Both worker widths actually ran.
        widths = {o.schedule.workers for o in report.outcomes}
        assert widths == {1, 3}
        # The fault plans exercised the recovery path, so the G1 checks bit.
        assert report.coverage().get(EventKind.RECOVERY.value)

    def test_summary_shape(self):
        report = explore(CASE, seeds=range(2), perturbations=0, branch_budget=0)
        s = report.summary()
        assert s["schedules"] == report.schedules_run
        assert s["clean"] is True
        assert s["errors"] == 0


class TestMutationStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return mutation_study(CASE, seeds=range(4), perturbations=1, branch_budget=8)

    def test_every_seeded_bug_is_convicted(self, results):
        for name, r in results.items():
            assert r.detected, f"mutation {name} escaped the explorer"

    def test_double_decrement_caught_by_notify_invariants(self, results):
        cx = results["double_decrement"].first_counterexample
        got = {v.invariant for v in cx.violations}
        assert got & {"no-double-notify", "join-conservation"} or cx.error

    def test_double_recovery_caught_by_recovery_invariants(self, results):
        cx = results["double_recovery"].first_counterexample
        got = {v.invariant for v in cx.violations}
        assert got & {"justified-recovery", "unique-recovery"} or cx.error

    def test_describe_names_the_schedule(self, results):
        for name, r in results.items():
            text = r.describe()
            assert name in text
            assert "detected" in text

    def test_catalogue_matches_results(self, results):
        assert set(results) == set(MUTATIONS)
