"""The invariant checker convicts synthetic protocol violations and stays
quiet on well-formed traces (synthetic and real)."""

import json
from types import SimpleNamespace

import pytest

from repro.obs.events import Event, EventKind
from repro.verify.invariants import (
    INVARIANTS,
    check_events,
    check_log,
    events_from_jsonl,
    summarize,
)

K = EventKind


def trace(*steps):
    """Build an event list from (kind, key, life[, data]) tuples."""
    events = []
    for seq, step in enumerate(steps):
        kind, key, life = step[0], step[1], step[2]
        data = step[3] if len(step) > 3 else {}
        worker = data.pop("worker", 0)
        events.append(Event(seq, float(seq), worker, kind, key=key, life=life, data=data))
    return events


def names(violations):
    return {v.invariant for v in violations}


CLEAN = [
    (K.TASK_CREATED, "a", 1),
    (K.NOTIFY, "a", 1, {"src": "a"}),
    (K.COMPUTE_BEGIN, "a", 1),
    (K.COMPUTE_END, "a", 1),
    (K.TASK_COMPUTED, "a", 1),
    (K.TASK_COMPLETED, "a", 1),
]


class TestCleanTraces:
    def test_minimal_lifecycle_is_clean(self):
        assert check_events(trace(*CLEAN)) == []

    def test_recovery_with_evidence_is_clean(self):
        events = trace(
            *CLEAN,
            (K.FAULT_OBSERVED, "a", 1),
            (K.RECOVERY, "a", 2),
            (K.NOTIFY, "a", 2, {"src": "a"}),
            (K.COMPUTE_BEGIN, "a", 2),
            (K.COMPUTE_END, "a", 2),
            (K.TASK_COMPUTED, "a", 2),
        )
        assert check_events(events) == []

    def test_real_fault_injected_run_is_clean(self):
        from repro.verify.explore import Schedule, make_app_case, run_schedule

        case = make_app_case("lcs", fault_phase="before_compute")
        app, plan = case(0)
        outcome = run_schedule(app, Schedule(seed=0, workers=3), plan=plan)
        assert outcome.error is None
        assert outcome.violations == []
        assert outcome.kinds.get(K.RECOVERY)


class TestG1Recovery:
    def test_duplicate_recovery(self):
        events = trace(
            (K.FAULT_OBSERVED, "a", 1),
            (K.RECOVERY, "a", 2),
            (K.RECOVERY, "a", 2),
        )
        got = names(check_events(events))
        assert "unique-recovery" in got
        assert "monotone-recovery" in got  # second install is also non-increasing

    def test_nonmonotone_recovery(self):
        events = trace(
            (K.FAULT_OBSERVED, "a", 2),
            (K.RECOVERY, "a", 3),
            (K.RECOVERY, "a", 2),
        )
        assert "monotone-recovery" in names(check_events(events, strict=False))

    def test_unjustified_recovery_strict_only(self):
        events = trace((K.RECOVERY, "a", 2))
        assert "justified-recovery" in names(check_events(events, strict=True))
        assert "justified-recovery" not in names(check_events(events, strict=False))

    def test_life_provenance(self):
        events = trace((K.COMPUTE_BEGIN, "a", 2), (K.COMPUTE_END, "a", 2))
        assert "life-provenance" in names(check_events(events))


class TestG3Notifications:
    def test_double_notify_within_one_arming(self):
        events = trace(
            (K.NOTIFY, "b", 1, {"src": "p"}),
            (K.NOTIFY, "b", 1, {"src": "p"}),
        )
        assert "no-double-notify" in names(check_events(events))

    def test_reset_opens_a_fresh_arming(self):
        events = trace(
            (K.NOTIFY, "b", 1, {"src": "p"}),
            (K.RESET, "b", 1),
            (K.NOTIFY, "b", 1, {"src": "p"}),
        )
        assert check_events(events) == []

    def test_join_conservation_needs_spec(self):
        spec = SimpleNamespace(predecessors=lambda key: ("p",) if key == "b" else ())
        premature = trace(
            (K.NOTIFY, "b", 1, {"src": "p"}),
            (K.COMPUTE_BEGIN, "b", 1),  # self-notification never arrived
            (K.COMPUTE_END, "b", 1),
        )
        assert "join-conservation" in names(check_events(premature, spec=spec))
        assert "join-conservation" not in names(check_events(premature, spec=None))

    def test_join_conservation_excess_notifications(self):
        spec = SimpleNamespace(predecessors=lambda key: ("p",))
        events = trace(
            (K.NOTIFY, "b", 1, {"src": "p"}),
            (K.NOTIFY, "b", 1, {"src": "b"}),
            (K.NOTIFY, "b", 1, {"src": "q"}),  # third arrival, joins allow 2
        )
        assert "join-conservation" in names(check_events(events, spec=spec))


class TestG2Status:
    def test_double_computed(self):
        events = trace(
            (K.COMPUTE_BEGIN, "a", 1),
            (K.COMPUTE_END, "a", 1),
            (K.TASK_COMPUTED, "a", 1),
            (K.TASK_COMPUTED, "a", 1),
        )
        assert "status-monotone" in names(check_events(events))

    def test_completed_without_computed(self):
        assert "status-monotone" in names(check_events(trace((K.TASK_COMPLETED, "a", 1))))

    def test_reset_after_publish(self):
        events = trace(
            (K.COMPUTE_BEGIN, "a", 1),
            (K.COMPUTE_END, "a", 1),
            (K.TASK_COMPUTED, "a", 1),
            (K.RESET, "a", 1),
        )
        assert "status-monotone" in names(check_events(events))

    def test_status_restored_not_rederived(self):
        events = trace(
            (K.COMPUTE_BEGIN, "a", 1),
            (K.COMPUTE_END, "a", 1),
            (K.RESET, "a", 1),
            (K.TASK_COMPUTED, "a", 1),  # no COMPUTE_END in the new arming
        )
        assert "status-rederivation" in names(check_events(events))


class TestTraceSanity:
    def test_overlapping_compute_same_worker(self):
        events = trace(
            (K.COMPUTE_BEGIN, "a", 1),
            (K.COMPUTE_BEGIN, "b", 1),
        )
        assert "balanced-compute" in names(check_events(events, partial=True))

    def test_open_compute_at_end_of_trace(self):
        events = trace((K.COMPUTE_BEGIN, "a", 1))
        assert "balanced-compute" in names(check_events(events))
        assert check_events(events, partial=True) == []


class TestAdapters:
    def test_check_log_refuses_lossy_ring(self):
        fake = SimpleNamespace(dropped=3, events=[])
        with pytest.raises(ValueError, match="dropped"):
            check_log(fake)

    def test_jsonl_round_trip(self, tmp_path):
        events = trace(*CLEAN)
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(json.dumps(e.to_dict()) for e in events) + "\n")
        back = events_from_jsonl(path)
        assert [e.kind for e in back] == [e.kind for e in events]
        assert check_events(back, spec=None) == []

    def test_summarize_keeps_catalogue_zeros(self):
        counts = summarize(check_events(trace((K.TASK_COMPLETED, "a", 1))))
        assert set(counts) == set(INVARIANTS)
        assert counts["status-monotone"] == 1
        assert counts["unique-recovery"] == 0
