"""Each concurrency lint fires on a seeded violation and stays quiet
otherwise; the shipped package itself must be clean."""

from repro.verify.lint import ALL_RULES, Module, run_lint


def lint_source(source, relpath, rule_name, extra=()):
    rules = [r for r in ALL_RULES if r.name == rule_name]
    assert rules, f"no such rule {rule_name}"
    modules = [Module.from_source(source, relpath), *extra]
    return [f for f in run_lint(rules=rules, modules=modules) if f.rule == rule_name]


class TestSeededViolations:
    def test_lock_discipline_fires_in_scheduler_module(self):
        src = (
            "def f(rec, runtime):\n"
            "    runtime.charge(1.0)\n"
            "    rec.join -= 1\n"
        )
        findings = lint_source(src, "core/ft.py", "lock-discipline")
        assert findings
        assert findings[0].line == 3

    def test_lock_discipline_ignores_non_scheduler_modules(self):
        src = "def f(rec):\n    rec.join -= 1\n"
        assert not lint_source(src, "apps/seeded.py", "lock-discipline")

    def test_charge_discipline_fires(self):
        src = "def f(rec):\n    with rec.lock:\n        pass\n"
        assert lint_source(src, "core/seeded.py", "charge-discipline")

    def test_raw_threading_fires(self):
        src = "import threading\nt = threading.Thread(target=print)\n"
        assert lint_source(src, "apps/seeded.py", "raw-threading")

    def test_emit_guard_fires_on_unguarded_emit(self):
        src = (
            "def f(self, key, life):\n"
            "    self.log.emit(EventKind.NOTIFY, key, life)\n"
        )
        findings = lint_source(src, "core/seeded.py", "emit-guard")
        assert findings
        assert findings[0].line == 2

    def test_emit_guard_accepts_obs_flag_guard(self):
        src = (
            "def f(self, key, life):\n"
            "    if self._obs:\n"
            "        self.log.emit(EventKind.NOTIFY, key, life)\n"
        )
        assert not lint_source(src, "core/seeded.py", "emit-guard")

    def test_emit_guard_accepts_null_log_identity_guard(self):
        src = (
            "def f(self, key, life):\n"
            "    if self.log is not NULL_LOG:\n"
            "        self.log.emit_at(EventKind.NOTIFY, 0.0, 0, key, life)\n"
        )
        assert not lint_source(src, "core/seeded.py", "emit-guard")

    def test_emit_guard_else_branch_is_not_guarded(self):
        src = (
            "def f(self, key, life):\n"
            "    if self._obs:\n"
            "        pass\n"
            "    else:\n"
            "        self.log.emit(EventKind.NOTIFY, key, life)\n"
        )
        assert lint_source(src, "core/seeded.py", "emit-guard")

    def test_emit_guard_ignores_modules_outside_core(self):
        src = "def f(log):\n    log.emit(EventKind.NOTIFY)\n"
        assert not lint_source(src, "obs/seeded.py", "emit-guard")

    def test_emit_guard_covers_hot_path_runtime_modules(self):
        src = "def f(log):\n    log.emit(EventKind.PARK)\n"
        assert lint_source(src, "runtime/threadpool.py", "emit-guard")
        assert lint_source(src, "runtime/procpool.py", "emit-guard")
        assert lint_source(src, "runtime/cluster.py", "emit-guard")
        # Other runtime modules (e.g. the simulator's virtual-time
        # emitter) are out of scope.
        assert not lint_source(src, "runtime/simulator.py", "emit-guard")

    def test_emit_guard_fires_on_unguarded_metric_publication(self):
        src = (
            "def f(self):\n"
            "    self._crash_counter.inc()\n"
            "    self._dispatch_hist.observe(0.001)\n"
        )
        findings = lint_source(src, "runtime/procpool.py", "emit-guard")
        assert [f.line for f in findings] == [2, 3]

    def test_emit_guard_accepts_mx_flag_guard(self):
        src = (
            "def f(self, dt):\n"
            "    mx = self._mx\n"
            "    if mx:\n"
            "        self._dispatch_hist.observe(dt)\n"
            "    if self._mx:\n"
            "        self._crash_counter.inc()\n"
        )
        assert not lint_source(src, "runtime/procpool.py", "emit-guard")

    def test_emit_guard_accepts_null_metrics_identity_guard(self):
        src = (
            "def f(self, dt):\n"
            "    if self.metrics is not NULL_METRICS:\n"
            "        self.hist.observe(dt)\n"
        )
        assert not lint_source(src, "core/seeded.py", "emit-guard")

    def test_emit_guard_ignores_gauge_set(self):
        # .set() is not audited: gauges are registered cold, and the name
        # collides with threading.Event.set.
        src = "def f(self):\n    self.gauge.set(1)\n    self._stop.set()\n"
        assert not lint_source(src, "runtime/threadpool.py", "emit-guard")

    def test_raw_multiprocessing_fires_outside_runtime(self):
        src = "import multiprocessing\np = multiprocessing.Pool()\n"
        assert lint_source(src, "apps/seeded.py", "raw-multiprocessing")

    def test_raw_multiprocessing_fires_on_from_import(self):
        src = "from multiprocessing import Process\n"
        assert lint_source(src, "core/seeded.py", "raw-multiprocessing")

    def test_raw_multiprocessing_fires_on_concurrent_futures(self):
        src = "from concurrent.futures import ProcessPoolExecutor\n"
        assert lint_source(src, "obs/seeded.py", "raw-multiprocessing")

    def test_raw_multiprocessing_allows_shared_memory_everywhere(self):
        for src in (
            "from multiprocessing import shared_memory\n",
            "from multiprocessing.shared_memory import SharedMemory\n",
            "import multiprocessing.shared_memory\n",
        ):
            assert not lint_source(src, "memory/seeded.py", "raw-multiprocessing")

    def test_raw_multiprocessing_allows_runtime_modules(self):
        src = "from multiprocessing import Pipe, Process\n"
        assert not lint_source(src, "runtime/seeded.py", "raw-multiprocessing")

    def test_raw_multiprocessing_allows_comm_modules(self):
        src = "import multiprocessing\n"
        assert not lint_source(src, "comm/seeded.py", "raw-multiprocessing")

    def test_raw_threading_allows_comm_modules(self):
        src = "import threading\nt = threading.Thread(target=print)\n"
        assert not lint_source(src, "comm/seeded.py", "raw-threading")

    def test_raw_socket_fires_outside_comm(self):
        for src in (
            "import socket\n",
            "import select\n",
            "import selectors\n",
            "from socket import create_connection\n",
            "import socket as sk\n",
        ):
            findings = lint_source(src, "runtime/seeded.py", "raw-socket")
            assert findings, src
            assert findings[0].line == 1

    def test_raw_socket_allows_comm_modules(self):
        src = "import socket\nimport select\nimport selectors\n"
        assert not lint_source(src, "comm/seeded.py", "raw-socket")

    def test_raw_socket_ignores_lookalike_modules(self):
        # Only the primitive modules are banned, not names that merely
        # start with them (socketserver is an HTTP-layer building block).
        src = "import socketserver\n"
        assert not lint_source(src, "obs/seeded.py", "raw-socket")

    def test_raw_socket_respects_waiver(self):
        src = "import socket  # verify: ok=raw-socket (seeded test fixture)\n"
        assert not lint_source(src, "apps/seeded.py", "raw-socket")

    def test_eventkind_coverage_fires_on_unrouted_member(self):
        src = "class EventKind(str, Enum):\n    PHANTOM = 'phantom'\n"
        replay = Module.from_source("_SCALAR_KINDS = {}\n", "obs/replay.py")
        assert lint_source(src, "obs/events.py", "eventkind-coverage", extra=[replay])


class TestWaivers:
    def test_pragma_waives_exactly_its_rule(self):
        src = (
            "def f(rec, runtime):\n"
            "    runtime.charge(1.0)\n"
            "    rec.join -= 1  # verify: ok=lock-discipline (test waiver)\n"
        )
        assert not lint_source(src, "core/ft.py", "lock-discipline")

    def test_pragma_for_other_rule_does_not_waive(self):
        src = (
            "def f(rec, runtime):\n"
            "    runtime.charge(1.0)\n"
            "    rec.join -= 1  # verify: ok=raw-threading\n"
        )
        assert lint_source(src, "core/ft.py", "lock-discipline")


class TestRealPackage:
    def test_package_is_clean(self):
        findings = run_lint()
        assert not findings, "\n".join(str(f) for f in findings)

    def test_finding_str_is_greppable(self):
        src = "def f(rec):\n    with rec.lock:\n        pass\n"
        (f,) = lint_source(src, "core/seeded.py", "charge-discipline")
        assert "core/seeded.py" in str(f)
        assert "charge-discipline" in str(f)
