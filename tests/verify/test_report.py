"""Tests for the shared reporting plumbing (repro.verify.report)."""

import json

from repro.verify.report import (
    PRAGMA,
    Finding,
    Module,
    findings_to_json,
    github_annotations,
    sort_findings,
)


class TestFinding:
    def test_str_format(self):
        f = Finding("wire-safety", "comm/tcp.py", 12, "boom")
        assert str(f) == "comm/tcp.py:12: [wire-safety] boom"

    def test_to_dict_round_trips_through_json(self):
        f = Finding("lock-leak", "runtime/x.py", 3, "leaked")
        back = json.loads(json.dumps(f.to_dict()))
        assert back == {
            "rule": "lock-leak",
            "path": "runtime/x.py",
            "line": 3,
            "message": "leaked",
        }


class TestPragma:
    def test_matches_rule_with_reason(self):
        m = PRAGMA.search("x = 1  # verify: ok=deadlock-cycle (startup only)")
        assert m is not None and m.group(1) == "deadlock-cycle"

    def test_module_waived_is_line_and_rule_scoped(self):
        src = "a = 1\nb = 2  # verify: ok=wire-safety (test)\n"
        mod = Module.from_source(src, "comm/x.py")
        assert mod.waived(2, "wire-safety")
        assert not mod.waived(2, "lock-leak")
        assert not mod.waived(1, "wire-safety")
        assert not mod.waived(99, "wire-safety")


class TestSortFindings:
    def test_orders_by_path_line_rule_message(self):
        fs = [
            Finding("b-rule", "z.py", 1, "m"),
            Finding("a-rule", "a.py", 9, "m"),
            Finding("a-rule", "a.py", 1, "n"),
            Finding("a-rule", "a.py", 1, "m"),
        ]
        ordered = sort_findings(fs)
        assert [(f.path, f.line, f.rule, f.message) for f in ordered] == [
            ("a.py", 1, "a-rule", "m"),
            ("a.py", 1, "a-rule", "n"),
            ("a.py", 9, "a-rule", "m"),
            ("z.py", 1, "b-rule", "m"),
        ]

    def test_collapses_exact_duplicates(self):
        f = Finding("r", "p.py", 1, "m")
        assert sort_findings([f, f, f]) == [f]


class TestJsonOutput:
    def test_clean_report(self):
        payload = json.loads(findings_to_json([]))
        assert payload == {"clean": True, "count": 0, "by_rule": {}, "findings": []}

    def test_counts_by_rule(self):
        fs = [
            Finding("wire-safety", "a.py", 1, "m1"),
            Finding("wire-safety", "a.py", 2, "m2"),
            Finding("lock-leak", "b.py", 3, "m3"),
        ]
        payload = json.loads(findings_to_json(fs))
        assert payload["clean"] is False
        assert payload["count"] == 3
        assert payload["by_rule"] == {"lock-leak": 1, "wire-safety": 2}
        assert [f["line"] for f in payload["findings"]] == [1, 2, 3]


class TestAnnotations:
    def test_github_error_lines(self):
        fs = [Finding("deadlock-cycle", "runtime/cluster.py", 7, "cycle A/B")]
        (line,) = github_annotations(fs)
        assert line == (
            "::error file=src/repro/runtime/cluster.py,line=7"
            "::[deadlock-cycle] cycle A/B"
        )
