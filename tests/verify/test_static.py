"""Tests for the whole-program static analyzer (repro.verify.static).

Three layers: the seeded-violation suite must convict every planted bug
(the analyzer's reason to be believed), benign shapes must stay clean
(the analyzer's reason to be usable), and the real package at HEAD must
pass -- the same gate CI holds every PR to.
"""

import pytest

from repro.verify.report import Module, load_modules
from repro.verify.static import STATIC_RULES, run_static
from repro.verify.static.seeded import SEEDED, run_selftest


def analyze(*sources: tuple[str, str], rules=STATIC_RULES):
    """Analyze synthetic modules together with the real package (so
    repro imports resolve) and return only the synthetic findings."""
    fixtures = [Module.from_source(src, rel) for rel, src in sources]
    paths = {m.relpath for m in fixtures}
    findings = run_static(modules=[*load_modules(), *fixtures], rules=rules)
    return [f for f in findings if f.path in paths]


# ---------------------------------------------------------------------------
# self-conviction: every rule catches the bug it exists for


class TestSeededViolations:
    @pytest.mark.parametrize("case", SEEDED, ids=[c.name for c in SEEDED])
    def test_case_is_convicted(self, case):
        from repro.verify.static.wire import PROTOCOLS, ProtocolExhaustiveRule

        rules = STATIC_RULES
        if case.extra_protocols:
            rules = tuple(
                ProtocolExhaustiveRule(PROTOCOLS + case.extra_protocols)
                if isinstance(r, ProtocolExhaustiveRule)
                else r
                for r in STATIC_RULES
            )
        source = "\n".join(case.module().lines)
        hits = [
            f
            for f in analyze((case.relpath, source), rules=rules)
            if f.rule == case.rule and case.expect in f.message
        ]
        assert hits, f"{case.name}: no [{case.rule}] finding matching {case.expect!r}"

    def test_run_selftest_reports_no_failures(self):
        assert run_selftest() == []

    def test_every_rule_has_at_least_one_seeded_case(self):
        seeded_rules = {c.rule for c in SEEDED}
        assert {r.name for r in STATIC_RULES} <= seeded_rules


# ---------------------------------------------------------------------------
# witness chains


class TestWitnessChains:
    def test_interprocedural_deadlock_witness_names_the_call_chain(self):
        src = """
import threading

class T:
    def __init__(self) -> None:
        self._x = threading.Lock()
        self._y = threading.Lock()

    def take_y(self) -> None:
        with self._y:
            pass

    def take_x(self) -> None:
        with self._x:
            pass

    def forward(self) -> None:
        with self._x:
            self.take_y()

    def backward(self) -> None:
        with self._y:
            self.take_x()
"""
        found = analyze(("runtime/_w1.py", src))
        cycles = [f for f in found if f.rule == "deadlock-cycle"]
        assert len(cycles) == 2  # both directions of the 2-cycle
        msgs = " | ".join(f.message for f in cycles)
        assert "T.take_y" in msgs and "T.take_x" in msgs
        assert "reverse path" in msgs

    def test_transitive_blocking_witness_reaches_the_primitive(self):
        src = """
import threading

from repro.comm.core import Comm

class F:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def inner(self, comm: Comm) -> object:
        return comm.recv()

    def outer(self, comm: Comm) -> object:
        with self._lock:
            return self.inner(comm)
"""
        found = analyze(("runtime/_w2.py", src))
        hits = [f for f in found if f.rule == "blocking-under-lock"]
        assert hits and ".recv()" in hits[0].message
        assert "F.inner" in hits[0].message  # the chain names the hop


# ---------------------------------------------------------------------------
# benign shapes stay clean


class TestNegatives:
    def test_consistent_lock_order_is_clean(self):
        src = """
import threading

class S:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self) -> None:
        with self._a:
            with self._b:
                pass

    def two(self) -> None:
        with self._a:
            with self._b:
                pass
"""
        assert analyze(("runtime/_n1.py", src)) == []

    def test_striped_lock_self_edge_is_not_a_deadlock(self):
        src = """
import threading

class Sharded:
    def __init__(self) -> None:
        self._locks = tuple(threading.Lock() for _ in range(8))

    def move(self, a: int, b: int) -> None:
        with self._locks[a]:
            with self._locks[b]:
                pass
"""
        assert analyze(("memory/_n2.py", src)) == []

    def test_blocking_outside_lock_is_clean(self):
        src = """
import threading
import time

class P:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def run(self) -> None:
        with self._lock:
            x = 1
        time.sleep(0.01)
"""
        assert analyze(("runtime/_n3.py", src)) == []

    def test_str_join_and_dict_get_are_not_blocking(self):
        src = """
import threading

class Fmt:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def render(self, parts: list, table: dict) -> str:
        with self._lock:
            return ", ".join(parts) + str(table.get("k"))
"""
        assert analyze(("obs/_n4.py", src)) == []

    def test_open_closed_in_finally_is_clean(self):
        src = """
from repro.comm.tcp import Address, connect

def probe(addr: Address) -> None:
    c = connect(addr)
    try:
        c.send(("ping",))
    finally:
        c.close()
"""
        assert analyze(("comm/_n5.py", src)) == []

    def test_escaping_open_is_the_callers_problem(self):
        src = """
from repro.comm.tcp import Address, connect

def dial(addr: Address):
    c = connect(addr)
    return c
"""
        assert analyze(("comm/_n6.py", src)) == []

    def test_exceptions_and_blockref_are_wire_safe(self):
        src = """
from repro.comm.core import Comm
from repro.exceptions import WorkerCrashError
from repro.graph.taskspec import BlockRef

def ship(comm: Comm, key: str) -> None:
    comm.send(("raise", WorkerCrashError(key)))
    comm.send(("ref", BlockRef("b", 0)))
    comm.send(("data", {"k": [1, 2.0, b"x", None]}))
"""
        assert analyze(("runtime/_n7.py", src)) == []

    def test_with_acquire_needs_no_finally(self):
        src = """
import threading

LOCK = threading.Lock()

def update(value: int) -> None:
    with LOCK:
        if value < 0:
            raise ValueError(value)
"""
        assert analyze(("runtime/_n8.py", src)) == []


# ---------------------------------------------------------------------------
# waivers and determinism


class TestWaivers:
    def test_pragma_silences_exactly_that_rule_on_that_line(self):
        src = """
import threading
import time

class P:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def nap(self) -> None:
        with self._lock:
            time.sleep(0.01)  # verify: ok=blocking-under-lock (test fixture)
"""
        assert analyze(("runtime/_wv1.py", src)) == []

    def test_wrong_rule_pragma_does_not_silence(self):
        src = """
import threading
import time

class P:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def nap(self) -> None:
        with self._lock:
            time.sleep(0.01)  # verify: ok=wire-safety (wrong rule)
"""
        found = analyze(("runtime/_wv2.py", src))
        assert [f.rule for f in found] == ["blocking-under-lock"]


class TestDeterminism:
    def test_repeated_runs_are_byte_identical(self):
        mods = load_modules()
        a = [str(f) for f in run_static(modules=mods)]
        b = [str(f) for f in run_static(modules=list(reversed(mods)))]
        assert a == b


# ---------------------------------------------------------------------------
# the real package


class TestRealPackage:
    def test_head_is_clean(self):
        findings = run_static()
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_rule_names_are_unique_and_kebab(self):
        names = [r.name for r in STATIC_RULES]
        assert len(names) == len(set(names))
        for n in names:
            assert n == n.lower() and " " not in n
